package service_test

import (
	"context"
	"fmt"

	proxrank "repro"
	"repro/api"
	"repro/service"
)

// ExampleExecutor_ExecuteStream serves one query incrementally: each
// result event reaches the sink the moment the engine certifies it
// (brokered, so a slow sink never holds the engine), followed by exactly
// one summary whose collected results match the batch Execute path
// byte for byte.
func ExampleExecutor_ExecuteStream() {
	hotels, _ := proxrank.NewRelation("hotels", 1.0, []proxrank.Tuple{
		{ID: "h1", Score: 0.9, Vec: proxrank.Vector{0.1, 0}},
		{ID: "h2", Score: 0.2, Vec: proxrank.Vector{5, 5}},
	})
	food, _ := proxrank.NewRelation("restaurants", 1.0, []proxrank.Tuple{
		{ID: "r1", Score: 0.8, Vec: proxrank.Vector{0, 0.2}},
		{ID: "r2", Score: 0.3, Vec: proxrank.Vector{-4, 4}},
	})
	cat := service.NewCatalog()
	if err := cat.Register("hotels", hotels); err != nil {
		fmt.Println(err)
		return
	}
	if err := cat.Register("restaurants", food); err != nil {
		fmt.Println(err)
		return
	}
	exec := service.NewExecutor(cat, service.Config{Workers: 2})

	req := &api.Request{
		Query:     []float64{0, 0},
		Relations: []string{"hotels", "restaurants"},
		K:         2,
	}
	err := exec.ExecuteStream(context.Background(), req, func(ev api.ResultEvent) error {
		switch ev.Type {
		case api.EventResult:
			fmt.Printf("rank %d: %s+%s\n", ev.Rank, ev.Result.Tuples[0].ID, ev.Result.Tuples[1].ID)
		case api.EventSummary:
			fmt.Printf("summary: %d results, dnf=%v, cached=%v\n",
				ev.Summary.Count, ev.Summary.DNF, ev.Summary.Cached)
		}
		return nil
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output:
	// rank 1: h1+r1
	// rank 2: h1+r2
	// summary: 2 results, dnf=false, cached=false
}
