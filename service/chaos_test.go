package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	proxrank "repro"
	"repro/api"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/shardrpc"
)

// chaosRels builds the two tie-prone relations every chaos fixture
// serves.
func chaosRels(t testing.TB, size int) []*proxrank.Relation {
	t.Helper()
	return []*proxrank.Relation{
		testRelation(t, "A", 300, size, 2),
		testRelation(t, "B", 301, size, 2),
	}
}

// startChaosServer serves rels from one shard server, optionally behind
// a fault-injecting listener. Returns the bound address.
func startChaosServer(t testing.TB, rels []*proxrank.Relation, shards int, strategy proxrank.PartitionStrategy, own Ownership, inj *faultinject.Injector) (string, *shardrpc.Server) {
	t.Helper()
	cat := NewCatalog()
	for _, rel := range rels {
		if err := cat.RegisterSharded(rel.Name, rel, shards, strategy); err != nil {
			t.Fatal(err)
		}
	}
	exec := NewExecutor(cat, Config{Workers: 2, CacheSize: -1})
	backend := NewShardBackend(cat, exec, own)
	srv := shardrpc.NewServer(backend)
	var bound net.Addr
	if inj != nil {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Serve(inj.Listener(ln)); err != nil {
			t.Fatal(err)
		}
		bound = ln.Addr()
	} else {
		b, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		bound = b
	}
	backend.SetName(bound.String())
	t.Cleanup(srv.Close)
	return bound.String(), srv
}

// chaosCoord fronts the given shard servers with a coordinator executor.
// Short per-peer timeouts keep dead-peer tests fast.
func chaosCoord(t testing.TB, addrs []string, hedge shardrpc.HedgePolicy) (*Executor, *Catalog, *shardrpc.Fleet) {
	t.Helper()
	fleet := shardrpc.NewFleet(addrs)
	fleet.Hedge = hedge
	t.Cleanup(fleet.Close)
	remotes, err := fleet.Discover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	for name, rr := range remotes {
		if err := cat.RegisterRemote(name, rr); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range fleet.Peers() {
		p.DialTimeout = 200 * time.Millisecond
		p.PullTimeout = 5 * time.Second
	}
	return NewExecutor(cat, Config{Workers: 2, CacheSize: -1}), cat, fleet
}

// localTwin registers the same relations locally, for byte-identity
// comparisons against a chaos deployment.
func localTwin(t testing.TB, rels []*proxrank.Relation, shards int, strategy proxrank.PartitionStrategy) *Executor {
	t.Helper()
	cat := NewCatalog()
	for _, rel := range rels {
		if err := cat.RegisterSharded(rel.Name, rel, shards, strategy); err != nil {
			t.Fatal(err)
		}
	}
	return NewExecutor(cat, Config{Workers: 2, CacheSize: -1})
}

// survivorResults computes the exact answer a degraded query must give:
// the engine run over only the surviving shards of each relation,
// merged in canonical order. It reuses the executor's own source
// plumbing, so any divergence in a degraded response is the failover
// path's fault, not this twin's.
func survivorResults(t *testing.T, twin *Executor, req *QueryRequest, survives func(shard int) bool) *QueryResponse {
	t.Helper()
	_, query, opts, entries, aerr := twin.prepare(req)
	if aerr != nil {
		t.Fatal(aerr)
	}
	sources := make([]proxrank.Source, len(entries))
	for i, e := range entries {
		var inputs []relation.KeyedSource
		for s := 0; s < e.Shards(); s++ {
			if !survives(s) {
				continue
			}
			src, err := e.Sharded().ShardSource(s, opts.Access, query, nil, true)
			if err != nil {
				t.Fatal(err)
			}
			ks, ok := src.(relation.KeyedSource)
			if !ok {
				t.Fatalf("shard source %T carries no merge keys", src)
			}
			inputs = append(inputs, ks)
		}
		merged, err := relation.NewMergedSource(e.Relation(), opts.Access, inputs)
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = merged
	}
	res, err := proxrank.TopKFromSourcesContext(context.Background(), query, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	return buildResponse(res, entries)
}

func marshalResults(t testing.TB, results []ResultCombination) string {
	t.Helper()
	buf, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestChaosDegradedByteIdentity: a degraded answer is not "roughly the
// surviving data" — it is exactly the top-K over the surviving shards,
// byte for byte, on both the batch and the streaming path. The
// Partial=forbid opt-out turns the same situation into a structured
// unavailable error on both paths.
func TestChaosDegradedByteIdentity(t *testing.T) {
	rels := chaosRels(t, 100)
	const shards = 4
	addrs := make([]string, 2)
	servers := make([]*shardrpc.Server, 2)
	for i := 0; i < 2; i++ {
		addrs[i], servers[i] = startChaosServer(t, rels, shards, proxrank.HashPartition, Ownership{Index: i, Count: 2}, nil)
	}
	coord, _, _ := chaosCoord(t, addrs, shardrpc.HedgePolicy{})
	servers[1].Close() // shards s with s%2 == 1 lose their only replica

	req := &QueryRequest{Query: []float64{0.2, -0.3}, Relations: []string{"A", "B"}, K: 5}
	resp, err := coord.Execute(context.Background(), req)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("response over a dead peer not marked degraded")
	}
	for _, m := range resp.ShardsMissing {
		if m.Shard%2 != 1 {
			t.Fatalf("shard %d of %q reported missing but its peer is alive", m.Shard, m.Relation)
		}
	}
	if len(resp.ShardsMissing) == 0 {
		t.Fatal("degraded response lists no missing shards")
	}
	if !resp.DNF && resp.ResultsCertified != len(resp.Results) {
		t.Fatalf("resultsCertified %d != %d results", resp.ResultsCertified, len(resp.Results))
	}

	twin := localTwin(t, rels, shards, proxrank.HashPartition)
	want := survivorResults(t, twin, req, func(s int) bool { return s%2 == 0 })
	if w, g := marshalResults(t, want.Results), marshalResults(t, resp.Results); w != g {
		t.Fatalf("degraded results differ from the surviving-shard answer\nsurvivors: %s\ndegraded:  %s", w, g)
	}

	// Streaming path: the summary carries the degradation marks and the
	// event results match the batch answer.
	events, err := collectEvents(t, coord, req)
	if err != nil {
		t.Fatalf("degraded stream failed: %v", err)
	}
	var summary *api.Summary
	var streamed []ResultCombination
	for _, ev := range events {
		if ev.Type == api.EventResult && ev.Result != nil {
			streamed = append(streamed, *ev.Result)
		}
		if ev.Type == api.EventSummary {
			summary = ev.Summary
		}
	}
	if summary == nil || !summary.Degraded || len(summary.ShardsMissing) == 0 {
		t.Fatalf("stream summary lacks degradation marks: %+v", summary)
	}
	if w, g := marshalResults(t, resp.Results), marshalResults(t, streamed); w != g {
		t.Fatalf("streamed degraded results differ from batch\nbatch:  %s\nstream: %s", w, g)
	}

	// The opt-out: forbidding partial results turns the degradation into
	// a clean structured failure on both paths.
	forbid := &QueryRequest{Query: []float64{0.2, -0.3}, Relations: []string{"A", "B"}, K: 5, Partial: api.PartialForbid}
	if _, err := coord.Execute(context.Background(), forbid); !isUnavailable(err) {
		t.Fatalf("batch partial=forbid: got %v, want %s", err, CodeUnavailable)
	}
	err = coord.ExecuteStream(context.Background(), forbid, func(api.ResultEvent) error { return nil })
	if !isUnavailable(err) {
		t.Fatalf("stream partial=forbid: got %v, want %s", err, CodeUnavailable)
	}
}

func isUnavailable(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == CodeUnavailable
}

// TestChaosHedgeRescuesStalledReplica: a replica that stalls one pull
// for seconds must not stall the query — the hedge fires after 25ms,
// the healthy replica answers, and the result is byte-identical to a
// single node's.
func TestChaosHedgeRescuesStalledReplica(t *testing.T) {
	rels := chaosRels(t, 90)
	const shards = 2
	stall := &faultinject.Rule{Verb: "pull", Action: faultinject.ActionDelay, Delay: 2500 * time.Millisecond, Times: 1}
	inj := faultinject.New(stall)
	slowAddr, _ := startChaosServer(t, rels, shards, proxrank.HashPartition, Ownership{}, inj)
	fastAddr, _ := startChaosServer(t, rels, shards, proxrank.HashPartition, Ownership{}, nil)
	coord, _, fleet := chaosCoord(t, []string{slowAddr, fastAddr}, shardrpc.HedgePolicy{After: 25 * time.Millisecond})
	twin := localTwin(t, rels, shards, proxrank.HashPartition)

	req := &QueryRequest{Query: []float64{0.4, 0.1}, Relations: []string{"A", "B"}, K: 4}
	start := time.Now()
	got, err := coord.Execute(context.Background(), req)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged query failed: %v", err)
	}
	if got.Degraded {
		t.Fatal("hedged query marked degraded; both replicas are alive")
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("query took %v under a 2.5s single-pull stall; the hedge did not rescue it", elapsed)
	}
	if stall.Fired() == 0 {
		t.Fatal("the stall rule never fired; the test exercised nothing")
	}
	var hedges int64
	for _, p := range fleet.Peers() {
		hedges += p.Hedges.Load()
	}
	if hedges == 0 {
		t.Fatal("no hedged request was issued")
	}
	want, err := twin.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if w, g := scrubResponse(t, want), scrubResponse(t, got); w != g {
		t.Fatalf("hedged answer differs from local\nlocal:  %s\nhedged: %s", w, g)
	}
}

// TestChaosCorruptFrameRetried: a corrupted response frame (intact
// length header, garbled payload) is retried transparently at the same
// offset — the query succeeds, undegraded and byte-identical.
func TestChaosCorruptFrameRetried(t *testing.T) {
	rels := chaosRels(t, 80)
	const shards = 2
	corrupt := &faultinject.Rule{Verb: "pull", Action: faultinject.ActionCorrupt, Times: 1}
	inj := faultinject.New(corrupt)
	addr, _ := startChaosServer(t, rels, shards, proxrank.HashPartition, Ownership{}, inj)
	coord, _, _ := chaosCoord(t, []string{addr}, shardrpc.HedgePolicy{Disable: true})
	twin := localTwin(t, rels, shards, proxrank.HashPartition)

	req := &QueryRequest{Query: []float64{-0.2, 0.5}, Relations: []string{"A", "B"}, K: 4}
	got, err := coord.Execute(context.Background(), req)
	if err != nil {
		t.Fatalf("query through frame corruption failed: %v", err)
	}
	if corrupt.Fired() != 1 {
		t.Fatalf("corrupt rule fired %d times, want 1", corrupt.Fired())
	}
	if got.Degraded {
		t.Fatal("corruption-retried query marked degraded")
	}
	want, err := twin.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if w, g := scrubResponse(t, want), scrubResponse(t, got); w != g {
		t.Fatalf("answer through corruption differs from local\nlocal: %s\ngot:   %s", w, g)
	}
}

// metricValue extracts one sample value from a /metrics exposition: the
// first line of family name whose label block contains labelSub.
func metricValue(t testing.TB, body, name, labelSub string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) == 0 || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		if labelSub != "" && !strings.Contains(rest, labelSub) {
			continue
		}
		fields := strings.Fields(rest[strings.IndexByte(rest, ' ')+1:])
		if len(fields) == 0 {
			fields = strings.Fields(rest)
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("metric %s: bad sample line %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("metric %s (labels ~%q) not found in exposition", name, labelSub)
	return 0
}

// TestChaosBreakerOnMetrics: killing a peer trips its circuit breaker,
// and the whole episode is observable on /metrics — breaker state reads
// open for exactly that peer, degraded queries are counted, the hedge
// families are exposed, and the exposition stays well-formed.
func TestChaosBreakerOnMetrics(t *testing.T) {
	rels := chaosRels(t, 80)
	const shards = 4
	addrs := make([]string, 2)
	servers := make([]*shardrpc.Server, 2)
	for i := 0; i < 2; i++ {
		addrs[i], servers[i] = startChaosServer(t, rels, shards, proxrank.HashPartition, Ownership{Index: i, Count: 2}, nil)
	}
	coord, cat, fleet := chaosCoord(t, addrs, shardrpc.HedgePolicy{})
	// A long cooldown keeps the breaker visibly open for the scrape.
	fleet.SetBreakerConfig(shardrpc.BreakerConfig{Cooldown: time.Minute})
	srv := NewServer(cat, coord)
	srv.AttachFleet(fleet)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	servers[1].Close()
	dead := fleet.Peers()[1]
	deadline := time.Now().Add(10 * time.Second)
	for dead.Breaker().State() != shardrpc.BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatalf("breaker for %s never opened (state %s after repeated failures)", dead.Addr, dead.Breaker().State())
		}
		req := &QueryRequest{Query: []float64{0.1, 0.1}, Relations: []string{"A", "B"}, K: 3}
		if _, err := coord.Execute(context.Background(), req); err != nil {
			t.Fatalf("degraded query failed while tripping the breaker: %v", err)
		}
	}

	body := getBody(t, ts.URL+"/metrics")
	if err := obs.CheckExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition is malformed under chaos: %v", err)
	}
	if v := metricValue(t, body, "proxrank_breaker_state", dead.Addr); v != 1 {
		t.Fatalf("proxrank_breaker_state{peer=%q} = %v, want 1 (open)", dead.Addr, v)
	}
	if v := metricValue(t, body, "proxrank_breaker_state", fleet.Peers()[0].Addr); v != 0 {
		t.Fatalf("live peer's breaker state = %v, want 0 (closed)", v)
	}
	if v := metricValue(t, body, "proxrank_degraded_queries_total", ""); v < 1 {
		t.Fatalf("proxrank_degraded_queries_total = %v, want >= 1", v)
	}
	if v := metricValue(t, body, "proxrank_breaker_opens_total", dead.Addr); v < 1 {
		t.Fatalf("proxrank_breaker_opens_total{peer=%q} = %v, want >= 1", dead.Addr, v)
	}
	if !strings.Contains(body, "proxrank_hedges_total") || !strings.Contains(body, "proxrank_hedge_wins_total") {
		t.Fatal("hedge metric families missing from the exposition")
	}

	// /v1/stats mirrors the same view in its per-peer JSON.
	var stats struct {
		Peers []PeerStats `json:"peers"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	found := false
	for _, p := range stats.Peers {
		if p.Addr == dead.Addr {
			found = true
			if p.Breaker != "open" || p.BreakerOpens < 1 {
				t.Fatalf("stats for dead peer: breaker=%q opens=%d, want open/>=1", p.Breaker, p.BreakerOpens)
			}
		}
	}
	if !found {
		t.Fatalf("dead peer %s missing from /v1/stats peers", dead.Addr)
	}
}

// TestChaosAdmissionControl: with one worker and a one-deep admission
// queue, a third concurrent query is shed with a fast 503 and a
// Retry-After header instead of piling onto the queue.
func TestChaosAdmissionControl(t *testing.T) {
	cat, names := testSetup(t, 2, 40, 2)
	x := NewExecutor(cat, Config{Workers: 1, AdmissionQueue: 1, CacheSize: -1, StreamBuffer: -1})
	ts := httptest.NewServer(NewServer(cat, x).Handler())
	t.Cleanup(ts.Close)

	// Hold the only worker slot: a legacy-coupled stream whose sink
	// blocks after the first event keeps its engine (and slot) pinned.
	held := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := true
		err := x.ExecuteStream(context.Background(), &QueryRequest{Query: []float64{0.1, 0.2}, Relations: names, K: 3},
			func(api.ResultEvent) error {
				if first {
					first = false
					close(held)
					<-release
				}
				return nil
			})
		if err != nil {
			t.Errorf("slot-holding stream failed: %v", err)
		}
	}()
	<-held

	// Second query: admitted to the queue (depth 1 = the watermark).
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := x.Execute(context.Background(), &QueryRequest{Query: []float64{0.3, 0.4}, Relations: names, K: 3}); err != nil {
			t.Errorf("queued query failed: %v", err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for x.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second query never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Third query: past the watermark — shed with 503 + Retry-After.
	body, _ := json.Marshal(api.Request{Query: []float64{0.5, 0.6}, Relations: names, K: 3})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded query: status %d, want %d", resp.StatusCode, http.StatusServiceUnavailable)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 overload response lacks a Retry-After header")
	}
	var errBody struct {
		Error *api.Error `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	if errBody.Error == nil || errBody.Error.Code != api.CodeOverloaded {
		t.Fatalf("overload error body: %+v, want code %s", errBody.Error, api.CodeOverloaded)
	}
	if x.Stats().Rejected < 1 {
		t.Fatal("rejected counter did not move")
	}

	close(release)
	wg.Wait()
}

// TestChaosReadyz: readiness flips to 503 when an unreplicated peer
// dies (its shards have no live replica) while liveness stays 200; a
// fully replicated deployment stays ready through the same loss.
func TestChaosReadyz(t *testing.T) {
	rels := chaosRels(t, 60)
	const shards = 4
	run := func(t *testing.T, own func(i int) Ownership, wantReadyAfterKill bool) {
		addrs := make([]string, 2)
		servers := make([]*shardrpc.Server, 2)
		for i := 0; i < 2; i++ {
			addrs[i], servers[i] = startChaosServer(t, rels, shards, proxrank.HashPartition, own(i), nil)
		}
		coord, cat, fleet := chaosCoord(t, addrs, shardrpc.HedgePolicy{})
		srv := NewServer(cat, coord)
		srv.AttachFleet(fleet)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)

		check := func(wantReady bool) {
			t.Helper()
			resp, err := http.Get(ts.URL + "/v1/readyz")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			wantStatus := http.StatusOK
			if !wantReady {
				wantStatus = http.StatusServiceUnavailable
			}
			var body struct {
				Ready  bool   `json:"ready"`
				Reason string `json:"reason"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != wantStatus || body.Ready != wantReady {
				t.Fatalf("readyz: status %d ready=%v (%q), want status %d ready=%v",
					resp.StatusCode, body.Ready, body.Reason, wantStatus, wantReady)
			}
		}
		check(true)
		servers[1].Close()
		check(wantReadyAfterKill)
		// Liveness is unaffected either way.
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz: status %d after peer death, want 200", resp.StatusCode)
		}
	}
	t.Run("unreplicated", func(t *testing.T) {
		run(t, func(i int) Ownership { return Ownership{Index: i, Count: 2} }, false)
	})
	t.Run("replicated", func(t *testing.T) {
		run(t, func(i int) Ownership { return Ownership{Index: i, Count: 2, Replicas: 2} }, true)
	})
}

// TestChaosInjectorHeals: a replica that resets every pull mid-response
// is carried by failover to its twin, and SetEnabled(false) heals every
// fault at once — the recovery half of a chaos run. Answers stay
// byte-identical and undegraded through both phases.
func TestChaosInjectorHeals(t *testing.T) {
	rels := chaosRels(t, 60)
	const shards = 2
	reset := &faultinject.Rule{Verb: "pull", Action: faultinject.ActionReset}
	inj := faultinject.New(reset)
	addr, _ := startChaosServer(t, rels, shards, proxrank.HashPartition, Ownership{}, nil)
	faultedAddr, _ := startChaosServer(t, rels, shards, proxrank.HashPartition, Ownership{}, inj)
	coord, _, _ := chaosCoord(t, []string{faultedAddr, addr}, shardrpc.HedgePolicy{Disable: true})
	twin := localTwin(t, rels, shards, proxrank.HashPartition)

	req := &QueryRequest{Query: []float64{0.0, 0.7}, Relations: []string{"A", "B"}, K: 3}
	want, err := twin.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// With the first-choice replica resetting every pull, failover
	// carries the query; after healing, it must still answer cleanly.
	for _, phase := range []string{"faulted", "healed"} {
		if phase == "healed" {
			inj.SetEnabled(false)
		}
		got, err := coord.Execute(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: query failed: %v", phase, err)
		}
		if got.Degraded {
			t.Fatalf("%s: query degraded despite a live replica", phase)
		}
		if w, g := scrubResponse(t, want), scrubResponse(t, got); w != g {
			t.Fatalf("%s: answer differs from local\nlocal: %s\ngot:   %s", phase, w, g)
		}
	}
	if reset.Fired() == 0 {
		t.Fatal("reset rule never fired")
	}
}
