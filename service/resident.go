package service

import (
	"os"
	"strconv"
	"strings"
)

// residentBytes reads the process's resident set size from
// /proc/self/statm (field 2, in pages). It returns 0 where /proc is
// unavailable (non-Linux, restricted containers) — the gauge then reads
// zero rather than the registry losing the family. This is the
// observable behind the memory-bounded-operation claim: a server whose
// catalog is mmap-backed keeps this flat while file sizes grow, because
// untouched tuple pages are never resident.
func residentBytes() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || pages < 0 {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
