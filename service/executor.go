package service

import (
	"context"
	"errors"
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	proxrank "repro"
	"repro/api"
	"repro/internal/broker"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/shardrpc"
)

// Config tunes the executor.
type Config struct {
	// Workers bounds the number of engine executions running at once;
	// excess queries wait for a slot until their context expires. Defaults
	// to GOMAXPROCS.
	Workers int
	// AdmissionQueue bounds how many queries may wait for a worker slot
	// at once; past the watermark new arrivals are shed immediately with
	// CodeOverloaded (HTTP 503 + Retry-After) instead of queueing into a
	// deadline they cannot meet. 0 takes 4×Workers; negative disables the
	// watermark (queries queue until their own deadline, the legacy
	// behavior).
	AdmissionQueue int
	// DefaultTimeout is the per-query deadline applied when the request
	// carries none (0 = no default deadline).
	DefaultTimeout time.Duration
	// MaxTimeout caps the deadline a client may request via
	// TimeoutMillis, so one caller cannot pin a worker slot arbitrarily
	// long (0 = DefaultMaxTimeout).
	MaxTimeout time.Duration
	// CacheSize is the LRU result-cache capacity in responses. The zero
	// value takes the default (DefaultCacheSize), matching every other
	// field; pass a negative value to disable caching.
	CacheSize int
	// MaxK rejects requests asking for more than this many results
	// (0 = DefaultMaxK).
	MaxK int
	// StreamBuffer is the stream delivery broker's per-subscriber lag
	// window, in events: how far the engine may run ahead of a stream
	// consumer before the overflow policy intervenes. 0 takes
	// DefaultStreamBuffer; a negative value disables the broker entirely,
	// restoring the legacy coupled delivery in which a streaming leader
	// advances at its sink's pace and holds its worker slot while doing
	// so.
	StreamBuffer int
	// StreamOverflow is the default policy for a stream subscriber that
	// exhausts its lag window: api.OverflowBlock (the default — the
	// engine waits up to StreamBlockTimeout, then drops the subscriber)
	// or api.OverflowDrop (the subscriber is dropped immediately and the
	// engine never waits). A request may override it per subscriber via
	// api.Request.Overflow.
	StreamOverflow string
	// StreamBlockTimeout is each block-policy subscriber's cumulative
	// block budget: the total time the engine will ever wait on that
	// subscriber across its stream before dropping it (0 =
	// DefaultStreamBlockTimeout). Cumulative, so a consumer that keeps
	// catching up at the last instant still delays the engine by at
	// most this much in total.
	StreamBlockTimeout time.Duration
	// Registry receives every metric family the executor registers
	// (exposed by the HTTP layer at GET /metrics). Nil gets a private
	// registry, still reachable via Executor.Registry() — sharing one
	// registry across executors panics on the duplicate families.
	Registry *obs.Registry
	// SlowQueryThreshold, when positive, logs every request whose total
	// duration reaches it as one SlowQuery JSON line on SlowQueryLog.
	// The log line carries the same per-phase trace structure a traced
	// request returns.
	SlowQueryThreshold time.Duration
	// SlowQueryLog is where slow-query lines go. Nil disables logging
	// even when the threshold is set.
	SlowQueryLog io.Writer
	// SpillDir, when non-empty, gives every BufferSpill session a
	// file-backed spill tier rooted here: combinations past the in-memory
	// slab watermark move to compact on-disk segments and revive in exact
	// rank order, so open enumeration over huge cross products runs at
	// flat resident memory. Empty keeps spill purely in RAM.
	SpillDir string
	// SpillMemBytes is the per-session in-memory slab budget before
	// overflow goes to SpillDir (0 = the engine default, 4 MiB).
	SpillMemBytes int
}

// DefaultMaxK caps K when Config.MaxK is unset: a serving layer should
// not materialize unbounded top lists for a single caller.
const DefaultMaxK = 1000

// DefaultMaxTimeout caps client-requested deadlines when
// Config.MaxTimeout is unset.
const DefaultMaxTimeout = time.Minute

// DefaultCacheSize is the result-cache capacity when Config.CacheSize is
// unset.
const DefaultCacheSize = 1024

// DefaultStreamBuffer is the broker's per-subscriber lag window when
// Config.StreamBuffer is unset: the engine may publish this many events
// beyond what a subscriber has consumed before overflow handling kicks
// in.
const DefaultStreamBuffer = 64

// DefaultStreamBlockTimeout is the cumulative per-subscriber block
// budget when Config.StreamBlockTimeout is unset.
const DefaultStreamBlockTimeout = time.Second

// DefaultStreamOverflow is the subscriber overflow policy when
// Config.StreamOverflow is unset: wait briefly, then drop. Blocking
// first keeps honest-but-momentarily-unscheduled consumers attached even
// when the engine publishes much faster than any sink can read.
const DefaultStreamOverflow = api.OverflowBlock

// The service speaks the transport-neutral api model; these aliases keep
// the historical service names compiling while guaranteeing the wire
// shape is defined in exactly one place.
type (
	// QueryRequest is the JSON body of POST /v1/query (and the legacy
	// POST /v1/topk).
	QueryRequest = api.Request
	// WeightsSpec mirrors proxrank.Weights in JSON.
	WeightsSpec = api.Weights
	// ResultTuple is one member of a result combination.
	ResultTuple = api.Tuple
	// ResultCombination is one ranked join result.
	ResultCombination = api.Combination
	// QueryCost reports what a query cost the engine.
	QueryCost = api.Cost
	// QueryResponse is the JSON body answering a batch query. Responses
	// returned by Executor.Execute may be shared with its result cache
	// and must be treated as read-only.
	QueryResponse = api.Response
)

// EventSink receives streaming result events in order. A sink returning
// an error aborts the run; the executor treats that as the caller going
// away (the engine work is discarded, not cached).
type EventSink func(api.ResultEvent) error

// StatsSnapshot is the executor's cumulative view served by GET /v1/stats.
type StatsSnapshot struct {
	Queries      int64 `json:"queries"`
	Streamed     int64 `json:"streamed"`
	Completed    int64 `json:"completed"`
	CacheHits    int64 `json:"cacheHits"`
	CacheMisses  int64 `json:"cacheMisses"`
	Coalesced    int64 `json:"coalesced"`
	CacheEntries int   `json:"cacheEntries"`
	Canceled     int64 `json:"canceled"`
	BadRequests  int64 `json:"badRequests"`
	Failed       int64 `json:"failed"`
	Rejected     int64 `json:"rejected"`
	InFlight     int64 `json:"inFlight"`
	// Queued counts queries waiting for a worker slot right now; Degraded
	// counts queries that completed without some shard whose every
	// replica was unreachable.
	Queued     int64 `json:"queued"`
	Degraded   int64 `json:"degraded"`
	EngineRuns int64 `json:"engineRuns"`
	// StreamsBrokered counts streaming leaders whose delivery went
	// through the broker (engine decoupled from the sink).
	StreamsBrokered int64 `json:"streamsBrokered"`
	// MidRunAttaches counts coalesced stream followers that attached to a
	// live topic mid-run (replaying the certified prefix, tailing live
	// events) instead of waiting for the leader to finish.
	MidRunAttaches int64 `json:"midRunAttaches"`
	// SlowSubscriberDrops counts stream subscribers disconnected by the
	// overflow policy for consuming slower than the delivery buffer
	// allows.
	SlowSubscriberDrops int64 `json:"slowSubscriberDrops"`
	// StreamSubscribers is the number of stream subscriptions attached
	// right now, across every live topic.
	StreamSubscribers int64 `json:"streamSubscribers"`
	// StreamPeakLag is the largest subscriber lag (in buffered events)
	// any publish has ever observed.
	StreamPeakLag int64 `json:"streamPeakLag"`
	// StreamBlockedMicros is the cumulative time engine publishes spent
	// parked on block-policy laggards.
	StreamBlockedMicros int64 `json:"streamBlockedMicros"`
	TotalSumDepths      int64 `json:"totalSumDepths"`
	TotalCombinations   int64 `json:"totalCombinations"`
	TotalBoundUpdates   int64 `json:"totalBoundUpdates"`
	TotalEngineMicros   int64 `json:"totalEngineMicros"`
	// RemoteStreamsOpened counts remote shard streams a query actually
	// pulled from; ShardsPruned counts those whose bound proved the shard
	// could not contribute, so the coordinator never opened them.
	RemoteStreamsOpened int64 `json:"remoteStreamsOpened"`
	ShardsPruned        int64 `json:"shardsPruned"`
	// TotalSpilledCombinations counts combinations BufferSpill sessions
	// moved out of the ranked heap; TotalSpilledBytes is how many bytes of
	// those reached the file spill tier.
	TotalSpilledCombinations int64 `json:"totalSpilledCombinations"`
	TotalSpilledBytes        int64 `json:"totalSpilledBytes"`
}

// Executor answers queries against a catalog through a bounded worker
// pool with per-query deadlines and an LRU result cache. Batch
// (Execute) and streaming (ExecuteStream) consumption share one
// validation path, one canonical cache key, and one single-flight
// group, so identical concurrent queries coalesce across consumption
// models. It is safe for concurrent use.
type Executor struct {
	cat    *Catalog
	cfg    Config
	slots  chan struct{}
	cache  *resultCache
	flight *flightGroup

	// m is the metric instrument set; bins the broker instruments every
	// stream topic attaches, so delivery health aggregates across runs.
	m    *metrics
	bins *broker.Instruments
	// slowMu serializes slow-query log lines (the sink is shared).
	slowMu sync.Mutex

	// wrapSource, when set (tests only), wraps each relation's merged
	// source before the engine reads it — the hook used to prove
	// incremental delivery against a deliberately slow source.
	wrapSource func(proxrank.Source) proxrank.Source

	queries           atomic.Int64
	streamed          atomic.Int64
	completed         atomic.Int64
	cacheHits         atomic.Int64
	cacheMisses       atomic.Int64
	coalesced         atomic.Int64
	canceled          atomic.Int64
	badRequests       atomic.Int64
	failed            atomic.Int64
	rejected          atomic.Int64
	inFlight          atomic.Int64
	queued            atomic.Int64
	degraded          atomic.Int64
	engineRuns        atomic.Int64
	streamsBrokered   atomic.Int64
	midRunAttaches    atomic.Int64
	slowDrops         atomic.Int64
	totalSumDepths    atomic.Int64
	totalCombinations atomic.Int64
	totalBoundUpdates atomic.Int64
	totalEngineMicros atomic.Int64
	remoteOpened      atomic.Int64
	shardsPruned      atomic.Int64
	totalSpilled      atomic.Int64
	totalSpilledBytes atomic.Int64
}

// NewExecutor builds an executor over cat.
func NewExecutor(cat *Catalog, cfg Config) *Executor {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.AdmissionQueue == 0 {
		cfg.AdmissionQueue = 4 * cfg.Workers
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = DefaultMaxK
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	if cfg.StreamBuffer == 0 {
		cfg.StreamBuffer = DefaultStreamBuffer
	}
	if cfg.StreamBlockTimeout <= 0 {
		cfg.StreamBlockTimeout = DefaultStreamBlockTimeout
	}
	// Fold the policy to its two legal values once, here, so subPolicy
	// never has to interpret free-form strings. Case is forgiven ("Drop"
	// means drop); anything else gets the safe default.
	if strings.EqualFold(cfg.StreamOverflow, api.OverflowDrop) {
		cfg.StreamOverflow = api.OverflowDrop
	} else {
		cfg.StreamOverflow = DefaultStreamOverflow
	}
	x := &Executor{
		cat:    cat,
		cfg:    cfg,
		slots:  make(chan struct{}, cfg.Workers),
		cache:  newResultCache(cfg.CacheSize),
		flight: newFlightGroup(),
		bins:   &broker.Instruments{},
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	x.m = newMetrics(reg, x)
	// Histogram hooks before the first topic attaches (Instruments
	// contract): lag and blocked-wait distributions ride the same
	// struct the gauges read.
	x.bins.ObserveLag = x.m.observeLag
	x.bins.ObserveBlocked = x.m.observeBlocked
	x.m.registerCatalog(cat)
	return x
}

// Registry returns the metrics registry this executor reports into —
// Config.Registry when one was supplied, a private registry otherwise.
func (x *Executor) Registry() *obs.Registry { return x.m.reg }

// AttachFleet wires a coordinator's peer fleet into this executor's
// metric registry: per-peer pull latency histograms and func-backed
// pull/retry/reconnect counters. Call once at coordinator startup.
func (x *Executor) AttachFleet(fleet *shardrpc.Fleet) { x.m.registerFleet(fleet) }

// Stats returns a consistent-enough snapshot of the counters.
func (x *Executor) Stats() StatsSnapshot {
	return StatsSnapshot{
		Queries:                  x.queries.Load(),
		Streamed:                 x.streamed.Load(),
		Completed:                x.completed.Load(),
		CacheHits:                x.cacheHits.Load(),
		CacheMisses:              x.cacheMisses.Load(),
		Coalesced:                x.coalesced.Load(),
		CacheEntries:             x.cache.len(),
		Canceled:                 x.canceled.Load(),
		BadRequests:              x.badRequests.Load(),
		Failed:                   x.failed.Load(),
		Rejected:                 x.rejected.Load(),
		InFlight:                 x.inFlight.Load(),
		Queued:                   x.queued.Load(),
		Degraded:                 x.degraded.Load(),
		EngineRuns:               x.engineRuns.Load(),
		StreamsBrokered:          x.streamsBrokered.Load(),
		MidRunAttaches:           x.midRunAttaches.Load(),
		SlowSubscriberDrops:      x.slowDrops.Load(),
		StreamSubscribers:        x.bins.Subscribers.Load(),
		StreamPeakLag:            x.bins.PeakLag.Load(),
		StreamBlockedMicros:      x.bins.BlockedNanos.Load() / 1e3,
		TotalSumDepths:           x.totalSumDepths.Load(),
		TotalCombinations:        x.totalCombinations.Load(),
		TotalBoundUpdates:        x.totalBoundUpdates.Load(),
		TotalEngineMicros:        x.totalEngineMicros.Load(),
		RemoteStreamsOpened:      x.remoteOpened.Load(),
		ShardsPruned:             x.shardsPruned.Load(),
		TotalSpilledCombinations: x.totalSpilled.Load(),
		TotalSpilledBytes:        x.totalSpilledBytes.Load(),
	}
}

// prepare runs the shared front half of every execution path: central
// validation and defaulting via api.Request.Normalize (with the server's
// K limit), translation into engine options, catalog resolution, and the
// dimensionality pre-check. The caller's request is never mutated —
// normalization happens on a private copy (callers may legally share one
// request across concurrent queries), which is returned for canonical
// cache keying. Client mistakes are tracked apart from Failed so the
// latter stays a server-health signal.
func (x *Executor) prepare(req *QueryRequest) (*QueryRequest, proxrank.Vector, proxrank.Options, []*Entry, *APIError) {
	// Shallow copy is enough: Normalize rewrites fields of the copy and
	// only ever replaces (never writes through) the Weights pointer.
	norm := *req
	query, opts, err := proxrank.OptionsFromRequest(&norm, api.Limits{MaxK: x.cfg.MaxK})
	if err != nil {
		x.badRequests.Add(1)
		return nil, nil, proxrank.Options{}, nil, asAPIError(err)
	}
	// Server-side engine tuning the wire request has no say over: where
	// (and whether) BufferSpill sessions overflow to disk.
	opts.SpillDir = x.cfg.SpillDir
	opts.SpillMemBytes = x.cfg.SpillMemBytes
	entries, err := x.cat.Resolve(norm.Relations)
	if err != nil {
		x.badRequests.Add(1)
		return nil, nil, proxrank.Options{}, nil, asAPIError(err)
	}
	for _, e := range entries {
		rel := e.Relation()
		if rel.Dim() != len(norm.Query) {
			x.badRequests.Add(1)
			return nil, nil, proxrank.Options{}, nil, apiErrorf(CodeBadRequest, "relation %q has dim %d, query has dim %d",
				rel.Name, rel.Dim(), len(norm.Query))
		}
	}
	return &norm, query, opts, entries, nil
}

// cacheKey is the canonical encoding of the normalized request (see
// api.Request.Canonical) suffixed with each resolved relation's catalog
// generation — so re-registering a name invalidates its entries — and
// shard count. Sharding does not change answers; the key carries it only
// as a defensive marker of the serving configuration. The generations
// align positionally with the request's relation list, which the
// canonical encoding already names.
func cacheKey(req *QueryRequest, entries []*Entry) string {
	canon := req.Canonical()
	var b strings.Builder
	b.Grow(len(canon) + 3 + 16*len(entries))
	b.WriteString(canon)
	b.WriteString("|g=")
	for _, e := range entries {
		b.WriteString(strconv.FormatUint(e.gen, 10))
		b.WriteByte('/')
		b.WriteString(strconv.Itoa(e.Shards()))
		b.WriteByte(',')
	}
	return b.String()
}

// Execute answers one query: validate and default through the api
// model, resolve the relations, consult the cache, coalesce concurrent
// identical misses into one engine run, wait for a worker slot (bounded
// by the query's deadline), run the engine with cancellation, record
// stats, and cache the outcome.
//
// The returned response may share its Results and Cost.Depths backing
// arrays with the executor's cache — treat it as read-only. Callers that
// need to mutate a response must copy those slices first.
func (x *Executor) Execute(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	x.queries.Add(1)
	o := x.beginObs(labelModeBatch, req)
	resp, err := x.execute(ctx, req, o)
	if resp != nil {
		o.noteDegraded(resp.Degraded, resp.ShardsMissing)
	}
	o.finish(req, err)
	if err == nil && req.Trace && resp != nil {
		// Attach on a shallow copy: the response may be shared with the
		// cache, and the trace describes this request alone.
		traced := *resp
		traced.Trace = o.trace()
		resp = &traced
	}
	return resp, err
}

// execute is the uninstrumented body of Execute; o records the phase
// spans and (for traced requests) carries the engine's trace recorder.
func (x *Executor) execute(ctx context.Context, req *QueryRequest, o *queryObs) (*QueryResponse, error) {
	norm, query, opts, entries, aerr := x.prepare(req)
	if aerr != nil {
		return nil, aerr
	}
	o.algo = norm.Algorithm
	o.phase(api.PhaseValidate)
	if o.rec != nil {
		opts.Tracer = o.rec
	}
	req = norm
	partial := req.Partial != api.PartialForbid
	if req.NoCache || !x.cache.enabled() {
		o.cache = api.CacheBypass
		ctx, cancel := x.applyDeadline(ctx, req)
		defer cancel()
		resp, err := x.run(ctx, query, opts, entries, "", false, partial)
		o.phase(api.PhaseEngine)
		return resp, err
	}
	key := cacheKey(req, entries)
	if cached, ok := x.cache.get(key); ok {
		x.cacheHits.Add(1)
		o.cache = api.CacheHit
		o.phase(api.PhaseCache)
		hit := *cached // shallow copy; cached value stays immutable
		hit.Cached = true
		return &hit, nil
	}
	x.cacheMisses.Add(1)
	o.cache = api.CacheMiss
	o.phase(api.PhaseCache)
	// The deadline is applied before the flight so a follower's wait is
	// bounded by its own requested timeout, not the leader's.
	ctx, cancel := x.applyDeadline(ctx, req)
	defer cancel()
	// Single-flight: identical concurrent misses run the engine once. The
	// leader executes; followers wait for its outcome. A leader failure is
	// not shared — its error may be specific to its own deadline — so each
	// waiting follower retries, one of them becoming the next leader.
	for {
		c, leader := x.flight.join(key)
		if leader {
			o.phase(api.PhaseFlight)
			finished := false
			// If a panic unwinds through the engine run, retire the flight
			// before it continues so followers are woken to retry instead
			// of waiting forever on a key that can never complete.
			defer func() {
				if !finished {
					x.flight.leave(key, c, nil, apiErrorf(CodeInternal, "query leader aborted"))
				}
			}()
			resp, err := x.run(ctx, query, opts, entries, key, true, partial)
			o.phase(api.PhaseEngine)
			finished = true
			x.flight.leave(key, c, resp, err)
			return resp, err
		}
		select {
		case <-c.done:
			if c.err != nil {
				continue
			}
			// Partial is a per-request policy, not part of the flight key:
			// a forbid follower that coalesced onto an allow leader whose
			// run degraded gets the failure it asked for, not the leader's
			// partial answer.
			if c.resp.Degraded && !partial {
				return nil, degradedForbidden(c.resp)
			}
			x.coalesced.Add(1)
			o.cache = api.CacheCoalesced
			o.phase(api.PhaseFlight)
			hit := *c.resp // shallow copy, like a cache hit
			hit.Cached = true
			return &hit, nil
		case <-ctx.Done():
			x.canceled.Add(1)
			return nil, asAPIError(ctx.Err())
		}
	}
}

// ExecuteStream answers one query incrementally: result events reach the
// sink as the engine certifies each combination — the first one long
// before the run completes — followed by exactly one summary event. The
// collected results are byte-identical to what Execute returns for the
// same request: both paths share validation, the canonical cache key,
// the result cache (a hit or a coalesced follower replays the cached
// response as events, summary marked cached), and the single-flight
// group.
//
// Validation and resolution failures are returned before the sink sees
// any event, so transports can still answer with a plain error; once
// events have flowed, a failure is returned after them and the transport
// appends it in-band.
//
// Delivery is brokered (unless Config.StreamBuffer is negative): the
// leader's engine runs to completion at engine speed under its own
// deadline, publishing events into a bounded per-query topic and
// releasing its worker slot when enumeration finishes, while the
// leader's sink and any coalesced followers drain the topic at their own
// pace. A follower that arrives mid-run attaches to the live topic —
// replaying the certified prefix, then tailing live events — so its
// time-to-first-event does not depend on how fast any other consumer
// reads. A subscriber that falls a full buffer behind is handled by the
// overflow policy (Config.StreamOverflow, overridable per request):
// blocked-then-dropped or dropped immediately, with the drop surfacing
// as a CodeOverloaded error on that subscriber only.
//
// NoCache forks a private, legacy-style run: the engine advances at the
// sink's pace, a sink failure aborts it, and the work is discarded — the
// escape hatch for a caller that wants strict engine-consumer coupling.
// A server whose result cache is disabled still brokers delivery: its
// streams run as private brokered runs (no coalescing, nothing stored,
// client disconnect aborts the engine) with the same slot-release and
// bounded-slow-sink guarantees.
func (x *Executor) ExecuteStream(ctx context.Context, req *QueryRequest, sink EventSink) error {
	x.queries.Add(1)
	x.streamed.Add(1)
	o := x.beginObs(labelModeStream, req)
	// Wrap the sink so the first delivered event stamps TTFE; the inner
	// path never sees the raw sink.
	wrapped := func(ev api.ResultEvent) error {
		o.firstEvent()
		if ev.Type == api.EventSummary && ev.Summary != nil {
			o.noteDegraded(ev.Summary.Degraded, ev.Summary.ShardsMissing)
		}
		return sink(ev)
	}
	err := x.executeStream(ctx, req, o, wrapped)
	o.finish(req, err)
	if err == nil && req.Trace {
		// The terminal trace event rides this subscriber's own sink after
		// its summary — it is never published into the shared topic, so
		// untraced consumers of the same run see an unchanged stream.
		if serr := sink(api.ResultEvent{Type: api.EventTrace, Trace: o.trace()}); serr != nil {
			x.canceled.Add(1)
			return apiErrorf(CodeCanceled, "stream sink: %v", serr)
		}
	}
	return err
}

// executeStream is the uninstrumented body of ExecuteStream; o records
// the phase spans and carries the trace recorder for traced requests.
func (x *Executor) executeStream(ctx context.Context, req *QueryRequest, o *queryObs, sink EventSink) error {
	norm, query, opts, entries, aerr := x.prepare(req)
	if aerr != nil {
		return aerr
	}
	o.algo = norm.Algorithm
	o.phase(api.PhaseValidate)
	if o.rec != nil {
		opts.Tracer = o.rec
	}
	req = norm
	partial := req.Partial != api.PartialForbid
	if req.NoCache || !x.cache.enabled() {
		o.cache = api.CacheBypass
		ctx, cancel := x.applyDeadline(ctx, req)
		defer cancel()
		if req.NoCache || !x.brokerEnabled() {
			// NoCache is the documented opt-out into strict coupling;
			// a disabled broker couples everything.
			_, err := x.runStream(ctx, query, opts, entries, "", false, partial, sink)
			o.phase(api.PhaseEngine)
			return err
		}
		// Cache disabled but broker on: a private brokered run — no
		// flight, nothing stored, but the delivery guarantees (slot
		// released at enumeration end, slow sink bounded by the overflow
		// policy) still hold.
		err := x.leadBrokered(ctx, req, query, opts, entries, "", nil, sink)
		o.phase(api.PhaseDrain)
		return err
	}
	key := cacheKey(req, entries)
	if cached, ok := x.cache.get(key); ok {
		x.cacheHits.Add(1)
		o.cache = api.CacheHit
		o.phase(api.PhaseCache)
		err := replayResponse(cached, sink)
		o.phase(api.PhaseDrain)
		return err
	}
	x.cacheMisses.Add(1)
	o.cache = api.CacheMiss
	o.phase(api.PhaseCache)
	ctx, cancel := x.applyDeadline(ctx, req)
	defer cancel()
	for {
		c, leader := x.flight.join(key)
		if leader {
			o.phase(api.PhaseFlight)
			if x.brokerEnabled() {
				// The leader's drain overlaps its own engine run, so the
				// span from here to completion is delivery time.
				err := x.leadBrokered(ctx, req, query, opts, entries, key, c, sink)
				o.phase(api.PhaseDrain)
				return err
			}
			finished := false
			defer func() {
				if !finished {
					x.flight.leave(key, c, nil, apiErrorf(CodeInternal, "query leader aborted"))
				}
			}()
			resp, err := x.runStream(ctx, query, opts, entries, key, true, partial, sink)
			o.phase(api.PhaseEngine)
			finished = true
			x.flight.leave(key, c, resp, err)
			return err
		}
		// A live topic means a brokered stream leader is mid-run: attach
		// and consume independently instead of waiting for it to finish.
		// A forbid request skips mid-run attachment: the leader's run may
		// yet degrade, and this subscriber must not deliver a partial
		// prefix — it waits for the settled outcome below instead.
		if topic := c.topic.Load(); topic != nil && partial {
			x.coalesced.Add(1)
			x.midRunAttaches.Add(1)
			o.cache = api.CacheCoalesced
			o.phase(api.PhaseFlight)
			delivered := 0
			counting := func(ev api.ResultEvent) error {
				delivered++
				return sink(ev)
			}
			err := x.drainSub(ctx, topic.Subscribe(x.subPolicy(req)), counting, true)
			var lf leaderFailedError
			if errors.As(err, &lf) {
				if delivered == 0 {
					// The leader failed before this follower saw anything:
					// like a done-channel follower, retry — a leader error
					// may be specific to its own deadline, and this caller
					// may become the next leader. Undo the share counters;
					// nothing was shared.
					x.coalesced.Add(-1)
					x.midRunAttaches.Add(-1)
					o.cache = api.CacheMiss
					continue
				}
				return lf.err
			}
			o.phase(api.PhaseDrain)
			return err
		}
		select {
		case <-c.done:
			if c.err != nil {
				continue
			}
			if c.resp.Degraded && !partial {
				return degradedForbidden(c.resp)
			}
			x.coalesced.Add(1)
			o.cache = api.CacheCoalesced
			o.phase(api.PhaseFlight)
			err := replayResponse(c.resp, sink)
			o.phase(api.PhaseDrain)
			return err
		case <-ctx.Done():
			x.canceled.Add(1)
			return asAPIError(ctx.Err())
		}
	}
}

// brokerEnabled reports whether stream delivery is decoupled from the
// engine.
func (x *Executor) brokerEnabled() bool { return x.cfg.StreamBuffer > 0 }

// subPolicy maps the request's overflow choice (or the server default)
// onto the broker's policy enum.
func (x *Executor) subPolicy(req *QueryRequest) broker.Policy {
	choice := req.Overflow
	if choice == "" {
		choice = x.cfg.StreamOverflow
	}
	if choice == api.OverflowDrop {
		return broker.PolicyDrop
	}
	return broker.PolicyBlock
}

// leadBrokered is the brokered streaming leader: set up the engine
// synchronously (so admission and setup failures still surface before
// any event), then run it in a goroutine that publishes into the topic,
// caches the response, retires the flight, and releases the worker slot
// the moment enumeration finishes — all independent of how fast anyone
// reads. The caller's half just drains its own subscription into its
// sink.
func (x *Executor) leadBrokered(ctx context.Context, req *QueryRequest, query proxrank.Vector, opts proxrank.Options, entries []*Entry, key string, c *flightCall, sink EventSink) error {
	topic := broker.New[api.ResultEvent](x.cfg.StreamBuffer, x.cfg.StreamBlockTimeout)
	topic.Attach(x.bins)
	// A coalescable run (c != nil) is detached from the leader's
	// cancellation: a leader whose client goes away must not abort work
	// that followers and the cache will consume. This is a deliberate
	// trade-off — a run every subscriber has abandoned still finishes
	// and fills the cache (the next identical query is then free), at
	// the cost of holding its slot until completion. Detachment removes
	// the client disconnect as a backstop, so a detached run always gets
	// a deadline ceiling: when neither the request nor the server
	// configures one, MaxTimeout (always set) bounds it — a blocking
	// source must not pin a worker slot forever. A private run (cache
	// disabled: c == nil, no flight, nothing stored) keeps the client's
	// cancellation: its work serves exactly one caller.
	base := ctx
	if c != nil {
		base = context.WithoutCancel(ctx)
	}
	engCtx, engCancel := x.applyDeadline(base, req)
	if req.TimeoutMillis == 0 && x.cfg.DefaultTimeout <= 0 {
		engCancel()
		engCtx, engCancel = context.WithTimeout(base, x.cfg.MaxTimeout)
	}
	// settle publishes the run's terminal outcome exactly once: retire
	// the flight (when coalescable) and poison or complete the topic.
	// Idempotent, and never called concurrently: the setup half only
	// settles before the engine goroutine exists, the goroutine after.
	settled := false
	settle := func(resp *QueryResponse, aerr *APIError) {
		if settled {
			return
		}
		settled = true
		if c != nil {
			var err error
			if aerr != nil {
				err = aerr
			}
			x.flight.leave(key, c, resp, err)
		}
		if aerr != nil {
			topic.Close(aerr)
		} else {
			topic.Close(nil)
		}
	}
	handled := false
	fail := func(aerr *APIError) error {
		handled = true
		engCancel()
		settle(nil, aerr)
		return aerr
	}
	// If a panic unwinds through setup, retire the flight and poison the
	// topic so neither followers nor subscribers wait on a key that can
	// never complete.
	defer func() {
		if !handled {
			fail(apiErrorf(CodeInternal, "query leader aborted"))
		}
	}()
	q, missing, release, aerr := x.openSession(ctx, query, opts, entries, req.Partial != api.PartialForbid)
	if aerr != nil {
		return fail(aerr)
	}

	x.engineRuns.Add(1)
	x.streamsBrokered.Add(1)
	handled = true // the engine goroutine owns flight retirement from here
	sub := topic.Subscribe(x.subPolicy(req))
	if c != nil {
		// Published before the engine starts: from here on followers
		// attach mid-run.
		c.topic.Store(topic)
	}
	go func() {
		defer func() {
			release()
			engCancel()
			// The goroutine is detached from any request handler, so an
			// engine panic must be contained here: without recover() it
			// would kill the whole process, not one query. settle is
			// idempotent, so the normal path's outcome is never
			// overwritten — this only retires the flight and poisons the
			// topic when the run really died mid-way.
			if r := recover(); r != nil {
				x.failed.Add(1)
				settle(nil, apiErrorf(CodeInternal, "stream leader panicked: %v", r))
			}
		}()
		resp, runErr := x.publishRun(engCtx, q, opts, entries, missing, topic)
		var aerr *APIError
		switch {
		case runErr == nil:
			// Degraded responses are never cached (the shard may come
			// back any moment); followers still share this run's outcome
			// through the flight and re-check their own partial policy.
			if c != nil && !resp.Degraded {
				x.cache.put(key, resp)
			}
		case c != nil:
			aerr = x.classifyRunError(runErr)
		default:
			// A private run's cancellation is the client's own (the engine
			// context is coupled to it) and the client's drain already
			// counted it; only genuine failures count here.
			aerr = asAPIError(runErr)
			if aerr.Code != CodeTimeout && aerr.Code != CodeCanceled {
				x.failed.Add(1)
			}
		}
		settle(resp, aerr)
	}()
	err := x.drainSub(ctx, sub, sink, false)
	var lf leaderFailedError
	if errors.As(err, &lf) {
		// The leader's caller reports its own run's failure plainly.
		return lf.err
	}
	return err
}

// publishRun drives the engine to completion at engine speed, publishing
// every certified result (and the DNF best-effort tail, matching the
// batch contract) plus the trailing summary into the topic. Overflowing
// subscribers are dropped by the topic per their policy; the run itself
// never waits on a consumer beyond that consumer's cumulative block
// budget. An engine failure comes back raw — the caller decides how to
// classify and count it.
func (x *Executor) publishRun(ctx context.Context, q *proxrank.Query, opts proxrank.Options, entries []*Entry, missing func() []api.MissingShard, topic *streamTopic) (*QueryResponse, error) {
	var combos []proxrank.Combination
	publish := func(ev api.ResultEvent) {
		if n := topic.Publish(ev); n > 0 {
			x.slowDrops.Add(int64(n))
		}
	}
	gap := x.m.newGapObserver(opts.Algorithm)
	dnf, err := pullCombinations(ctx, q, opts.K, func(c proxrank.Combination) error {
		combos = append(combos, c)
		gap()
		wire := wireCombination(c, entries)
		publish(api.ResultEvent{Type: api.EventResult, Rank: len(combos), Result: &wire})
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := proxrank.Result{
		Combinations: combos,
		Threshold:    q.Threshold(),
		DNF:          dnf,
		Stats:        q.Stats(),
	}
	resp := buildResponse(res, entries)
	x.stampDegraded(resp, missing())
	x.recordOutcome(res.Stats)
	publish(api.ResultEvent{Type: api.EventSummary, Summary: &api.Summary{
		Count:            len(resp.Results),
		DNF:              resp.DNF,
		Cached:           false,
		Cost:             resp.Cost,
		Degraded:         resp.Degraded,
		ShardsMissing:    resp.ShardsMissing,
		ResultsCertified: resp.ResultsCertified,
	}})
	return resp, nil
}

// drainSub delivers one subscription to one sink at the sink's own pace
// — the consumer half of brokered delivery. markCached rewrites the
// summary on a copy (events are shared across subscribers) the way
// replayResponse marks a follower's replay.
func (x *Executor) drainSub(ctx context.Context, sub *broker.Sub[api.ResultEvent], sink EventSink, markCached bool) error {
	// Detach on every exit so an abandoned subscription never constrains
	// the engine.
	defer sub.Cancel()
	for {
		ev, err := sub.Next(ctx)
		switch {
		case err == nil:
			if markCached && ev.Type == api.EventSummary && ev.Summary != nil {
				s := *ev.Summary
				s.Cached = true
				ev.Summary = &s
			}
			if serr := sink(ev); serr != nil {
				x.canceled.Add(1)
				return apiErrorf(CodeCanceled, "stream sink: %v", serr)
			}
		case errors.Is(err, broker.ErrDone):
			return nil
		case errors.Is(err, broker.ErrSlowSubscriber):
			return apiErrorf(CodeOverloaded, "stream consumer too slow: fell more than %d events behind the engine", x.cfg.StreamBuffer)
		case ctx.Err() != nil && errors.Is(err, ctx.Err()):
			x.canceled.Add(1)
			return asAPIError(err)
		default:
			// The topic's terminal error: the engine side already recorded
			// and classified it. Wrapped so a follower that saw no events
			// yet can retry instead of inheriting the leader's failure.
			return leaderFailedError{asAPIError(err)}
		}
	}
}

// leaderFailedError relays a brokered leader's terminal failure to a
// subscriber. The leader's own caller unwraps it; a follower that has
// delivered nothing yet treats it as a cue to retry the flight.
type leaderFailedError struct{ err *APIError }

func (e leaderFailedError) Error() string { return e.err.Error() }
func (e leaderFailedError) Unwrap() error { return e.err }

// replayResponse streams an already-computed response as events, summary
// marked cached — the follower/cache-hit half of ExecuteStream. The
// degraded fields carry over (reachable only via the flight: degraded
// responses are never cached).
func replayResponse(resp *QueryResponse, sink EventSink) error {
	for i := range resp.Results {
		ev := api.ResultEvent{Type: api.EventResult, Rank: i + 1, Result: &resp.Results[i]}
		if err := sink(ev); err != nil {
			return asAPIError(err)
		}
	}
	return sink(api.ResultEvent{Type: api.EventSummary, Summary: &api.Summary{
		Count:            len(resp.Results),
		DNF:              resp.DNF,
		Cached:           true,
		Cost:             resp.Cost,
		Degraded:         resp.Degraded,
		ShardsMissing:    resp.ShardsMissing,
		ResultsCertified: resp.ResultsCertified,
	}})
}

// degradedForbidden is the failure a partial=forbid request gets when
// the flight outcome it shared completed degraded: the results exist,
// but the caller asked for all shards or nothing.
func degradedForbidden(resp *QueryResponse) *APIError {
	return apiErrorf(CodeUnavailable,
		"query degraded: %d shard(s) had no reachable replica and the request forbids partial results",
		len(resp.ShardsMissing))
}

// applyDeadline wraps ctx with the query's effective deadline: the
// clamped client-requested TimeoutMillis, else the configured default.
// The returned cancel is never nil.
func (x *Executor) applyDeadline(ctx context.Context, req *QueryRequest) (context.Context, context.CancelFunc) {
	if req.TimeoutMillis > 0 {
		// Clamp in milliseconds before converting: a huge TimeoutMillis
		// would overflow the Duration multiply into a negative (instantly
		// expired) deadline.
		millis := req.TimeoutMillis
		if maxMillis := x.cfg.MaxTimeout.Milliseconds(); millis > maxMillis {
			millis = maxMillis
		}
		return context.WithTimeout(ctx, time.Duration(millis)*time.Millisecond)
	}
	if x.cfg.DefaultTimeout > 0 {
		return context.WithTimeout(ctx, x.cfg.DefaultTimeout)
	}
	return ctx, func() {}
}

// acquireSlot claims a worker slot, bounded by the query's deadline; a
// query that cannot start before its deadline is shed rather than queued
// forever. A query that would have to wait is first admission-checked
// against the queue-depth watermark (Config.AdmissionQueue): past it the
// query is shed immediately with CodeOverloaded — a fast 503 the client
// can retry elsewhere beats queueing into a deadline it cannot meet.
// The release func is nil exactly when an error is returned.
func (x *Executor) acquireSlot(ctx context.Context) (func(), *APIError) {
	claim := func() func() {
		x.inFlight.Add(1)
		return func() {
			x.inFlight.Add(-1)
			<-x.slots
		}
	}
	select {
	case x.slots <- struct{}{}:
		return claim(), nil
	default:
	}
	// Every slot is busy: this query queues. Shed it at the watermark —
	// the count below includes this query, so depth > limit means the
	// queue was already full when it arrived.
	if limit := x.cfg.AdmissionQueue; limit > 0 {
		if depth := x.queued.Add(1); depth > int64(limit) {
			x.queued.Add(-1)
			x.rejected.Add(1)
			return nil, apiErrorf(CodeOverloaded, "server overloaded: %d queries already queued (limit %d)", depth-1, limit)
		}
	} else {
		x.queued.Add(1)
	}
	defer x.queued.Add(-1)
	select {
	case x.slots <- struct{}{}:
		return claim(), nil
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.Canceled) {
			// The caller went away while queued — that is cancellation,
			// not overload; counting it as rejected would fake a capacity
			// signal out of ordinary client disconnects.
			x.canceled.Add(1)
			return nil, asAPIError(ctx.Err())
		}
		x.rejected.Add(1)
		return nil, apiErrorf(CodeOverloaded, "no worker available before the deadline: %v", ctx.Err())
	}
}

// recordOutcome folds one finished engine run into the counters and the
// per-run engine cost distributions.
func (x *Executor) recordOutcome(stats proxrank.Stats) {
	x.completed.Add(1)
	x.totalSumDepths.Add(int64(stats.SumDepths))
	x.totalCombinations.Add(stats.CombinationsFormed)
	x.totalBoundUpdates.Add(stats.BoundUpdates)
	x.totalEngineMicros.Add(stats.TotalTime.Microseconds())
	x.totalSpilled.Add(stats.SpilledCombinations)
	x.totalSpilledBytes.Add(stats.SpilledBytes)
	x.m.sumDepths.Observe(float64(stats.SumDepths))
	if stats.CombinationsFormed > 0 {
		x.m.pruneRatio.Observe(float64(stats.CombinationsPruned) / float64(stats.CombinationsFormed))
	}
}

// classifyRunError records the failure counters for an engine-run error
// and returns its API form.
func (x *Executor) classifyRunError(err error) *APIError {
	ae := asAPIError(err)
	if ae.Code == CodeTimeout || ae.Code == CodeCanceled {
		x.canceled.Add(1)
	} else {
		x.failed.Add(1)
	}
	return ae
}

// stampDegraded marks resp degraded when the run abandoned shards:
// Degraded, the missing shard list, and the certified count over the
// data that was actually reachable (zero when a DNF cap also cut the
// surviving-shard certification short). A no-op — and no counter bump —
// when nothing was missing.
func (x *Executor) stampDegraded(resp *QueryResponse, missing []api.MissingShard) {
	if len(missing) == 0 {
		return
	}
	resp.Degraded = true
	resp.ShardsMissing = missing
	if !resp.DNF {
		resp.ResultsCertified = len(resp.Results)
	}
	x.degraded.Add(1)
}

// run executes the engine for one resolved query under an
// already-deadlined context: acquire a worker slot, fan out per-shard
// source creation, run with cancellation, record stats, and (when store
// is set) cache the response under key. Degraded responses — partial
// mode let a dead shard drop out — are stamped but never cached: the
// shard may come back any moment, and a cached degraded answer would
// outlive the outage.
func (x *Executor) run(ctx context.Context, query proxrank.Vector, opts proxrank.Options, entries []*Entry, key string, store, partial bool) (*QueryResponse, error) {
	if err := ctx.Err(); err != nil {
		x.canceled.Add(1)
		return nil, asAPIError(err)
	}
	release, aerr := x.acquireSlot(ctx)
	if aerr != nil {
		return nil, aerr
	}
	defer release()

	sources, missing, cleanup, aerr := x.buildSources(ctx, opts, query, entries, partial)
	if aerr != nil {
		x.failed.Add(1)
		return nil, aerr
	}
	defer cleanup()

	x.engineRuns.Add(1)
	res, err := proxrank.TopKFromSourcesContext(ctx, query, sources, opts)
	if err != nil {
		return nil, x.classifyRunError(err)
	}

	resp := buildResponse(res, entries)
	x.stampDegraded(resp, missing())
	x.recordOutcome(res.Stats)
	if store && !resp.Degraded {
		x.cache.put(key, resp)
	}
	return resp, nil
}

// runStream is run's incremental twin: the same slot, source fan-out,
// stats, and caching discipline, but the engine is driven through a
// Query session and every certified combination is handed to the sink
// the moment it exists. A capped run streams its best-effort tail too
// (so collected results match the batch DNF response) and flags DNF on
// the summary.
func (x *Executor) runStream(ctx context.Context, query proxrank.Vector, opts proxrank.Options, entries []*Entry, key string, store, partial bool, sink EventSink) (*QueryResponse, error) {
	if err := ctx.Err(); err != nil {
		x.canceled.Add(1)
		return nil, asAPIError(err)
	}
	q, missing, release, aerr := x.openSession(ctx, query, opts, entries, partial)
	if aerr != nil {
		return nil, aerr
	}
	defer release()

	x.engineRuns.Add(1)
	var combos []proxrank.Combination
	gap := x.m.newGapObserver(opts.Algorithm)
	dnf, err := pullCombinations(ctx, q, opts.K, func(c proxrank.Combination) error {
		combos = append(combos, c)
		gap()
		wire := wireCombination(c, entries)
		return sink(api.ResultEvent{Type: api.EventResult, Rank: len(combos), Result: &wire})
	})
	if err != nil {
		var serr sinkError
		if errors.As(err, &serr) {
			x.canceled.Add(1)
			return nil, apiErrorf(CodeCanceled, "stream sink: %v", serr.err)
		}
		return nil, x.classifyRunError(err)
	}

	res := proxrank.Result{
		Combinations: combos,
		Threshold:    q.Threshold(),
		DNF:          dnf,
		Stats:        q.Stats(),
	}
	resp := buildResponse(res, entries)
	x.stampDegraded(resp, missing())
	x.recordOutcome(res.Stats)
	if store && !resp.Degraded {
		x.cache.put(key, resp)
	}
	if serr := sink(api.ResultEvent{Type: api.EventSummary, Summary: &api.Summary{
		Count:            len(resp.Results),
		DNF:              resp.DNF,
		Cached:           false,
		Cost:             resp.Cost,
		Degraded:         resp.Degraded,
		ShardsMissing:    resp.ShardsMissing,
		ResultsCertified: resp.ResultsCertified,
	}}); serr != nil {
		return resp, apiErrorf(CodeCanceled, "stream sink: %v", serr)
	}
	return resp, nil
}

// openSession is the setup half shared by both streaming delivery paths
// (sink-coupled runStream and brokered leadBrokered): claim a worker
// slot, open the per-relation sources, and build the bounded query
// session. On error the slot is already released and the failure
// counters recorded; on success the caller owns release.
//
// The session buffer is bounded to K exactly like the batch path — a
// streamed query delivers at most K results (certified prefix plus DNF
// drain) — so peak memory is O(K) with byte-identical events.
// Validation guarantees an explicit client MaxBuffered is >= K.
func (x *Executor) openSession(ctx context.Context, query proxrank.Vector, opts proxrank.Options, entries []*Entry, partial bool) (*proxrank.Query, func() []api.MissingShard, func(), *APIError) {
	release, aerr := x.acquireSlot(ctx)
	if aerr != nil {
		return nil, nil, nil, aerr
	}
	sources, missing, cleanup, aerr := x.buildSources(ctx, opts, query, entries, partial)
	if aerr != nil {
		release()
		x.failed.Add(1)
		return nil, nil, nil, aerr
	}
	q, err := proxrank.NewQuerySources(query, sources, opts.BoundedToK())
	if err != nil {
		cleanup()
		release()
		x.failed.Add(1)
		return nil, nil, nil, asAPIError(err)
	}
	done := func() {
		cleanup()
		release()
	}
	return q, missing, done, nil
}

// sinkError marks an emit failure inside pullCombinations, so callers
// can tell a consumer that went away apart from an engine failure.
type sinkError struct{ err error }

func (e sinkError) Error() string { return e.err.Error() }

// pullCombinations drives a query session to at most k results, handing
// each to emit the moment it is certified. A capped run delivers the
// uncertified best-effort tail in report order too — matching the batch
// DNF contract — and returns dnf true. The error is a sinkError if emit
// failed, or the engine's own failure otherwise; both streaming delivery
// paths (sink-coupled and brokered) share this one loop, which is what
// keeps their event sequences identical.
func pullCombinations(ctx context.Context, q *proxrank.Query, k int, emit func(proxrank.Combination) error) (bool, error) {
	emitted := 0
	send := func(c proxrank.Combination) error {
		emitted++
		if err := emit(c); err != nil {
			return sinkError{err}
		}
		return nil
	}
	for emitted < k {
		batch, err := q.NextContext(ctx, 1)
		for _, c := range batch {
			if serr := send(c); serr != nil {
				return false, serr
			}
		}
		switch {
		case err == nil:
		case errors.Is(err, proxrank.ErrStreamDone):
			return false, nil
		case errors.Is(err, proxrank.ErrDNF):
			for _, c := range q.DrainBest(k - emitted) {
				if serr := send(c); serr != nil {
					return false, serr
				}
			}
			return true, nil
		default:
			return false, err
		}
	}
	return false, nil
}

// wireAccess maps an engine access kind to its wire name.
func wireAccess(kind proxrank.AccessKind) string {
	if kind == proxrank.ScoreAccess {
		return api.AccessScore
	}
	return api.AccessDistance
}

// buildSources opens one engine stream per relation: every shard of every
// relation gets its ordered source, creation fans out across a bounded
// pool when the entries hold more than one shard in total, and each
// relation's shard streams are merged back into its canonical order. The
// dim pre-check in prepare already rules out the only documented source
// failure; anything surfacing here is a server-side problem, which the
// caller reports as internal.
//
// Remote entries (coordinator mode) resolve each shard to a
// shardrpc.RemoteSource — constructed lazily, so nothing touches the
// network here — and merge them with the same k-way merge local shards
// use. partial puts every remote source in partial mode: a shard whose
// every replica is unreachable ends its stream early (and is reported by
// the returned missing collector) instead of failing the query. The
// returned cleanup must run once the engine is done with the sources: it
// releases remote connections and settles the pruning accounting (a
// remote source the merge never opened is a pruned shard). It is always
// non-nil, also on error. missing must be called by the goroutine that
// drove the engine, after the run finishes and before the sources are
// discarded.
func (x *Executor) buildSources(ctx context.Context, opts proxrank.Options, query proxrank.Vector, entries []*Entry, partial bool) ([]proxrank.Source, func() []api.MissingShard, func(), *APIError) {
	var remotes []*shardrpc.RemoteSource
	missing := func() []api.MissingShard {
		var out []api.MissingShard
		for _, rs := range remotes {
			if rs.Missing() {
				out = append(out, api.MissingShard{Relation: rs.RelationName(), Shard: rs.Shard()})
			}
		}
		return out
	}
	cleanup := func() {
		var opened, pruned int64
		for _, rs := range remotes {
			if rs.Opened() {
				opened++
			} else {
				pruned++
			}
			rs.Close()
		}
		x.remoteOpened.Add(opened)
		x.shardsPruned.Add(pruned)
	}

	type job struct{ rel, shard int }
	var jobs []job
	perRel := make([][]proxrank.Source, len(entries))
	sources := make([]proxrank.Source, len(entries))
	for i, e := range entries {
		if rr := e.Remote(); rr != nil {
			inputs := make([]relation.KeyedSource, rr.Shards)
			for s := 0; s < rr.Shards; s++ {
				rs, err := shardrpc.OpenRemoteShard(ctx, e.Relation(), rr, s, wireAccess(opts.Access), query, 0)
				if err != nil {
					cleanup()
					return nil, nil, func() {}, apiErrorf(CodeInternal, "%v", err)
				}
				rs.SetPartial(partial)
				remotes = append(remotes, rs)
				inputs[s] = rs
			}
			merged, err := relation.NewMergedSource(e.Relation(), opts.Access, inputs)
			if err != nil {
				cleanup()
				return nil, nil, func() {}, apiErrorf(CodeInternal, "%v", err)
			}
			if x.wrapSource != nil {
				sources[i] = x.wrapSource(merged)
			} else {
				sources[i] = merged
			}
			continue
		}
		n := e.Shards()
		perRel[i] = make([]proxrank.Source, n)
		for s := 0; s < n; s++ {
			jobs = append(jobs, job{rel: i, shard: s})
		}
	}
	open := func(j job) error {
		e := entries[j.rel]
		src, err := e.Sharded().ShardSource(j.shard, opts.Access, query, nil, true)
		if err != nil {
			return err
		}
		perRel[j.rel][j.shard] = src
		return nil
	}
	fail := func(err error) ([]proxrank.Source, func() []api.MissingShard, func(), *APIError) {
		cleanup()
		return nil, nil, func() {}, apiErrorf(CodeInternal, "%v", err)
	}
	// Opening an in-memory shard source is cheap (a cursor or an O(1)
	// traversal setup), so the pool only pays for itself on wide fan-outs;
	// below the threshold a sequential loop is strictly faster than
	// spawning goroutines per query.
	const fanOutThreshold = 16
	if workers := min(x.cfg.Workers, len(jobs)); workers > 1 && len(jobs) >= fanOutThreshold {
		feed := make(chan job)
		var wg sync.WaitGroup
		var firstErr atomic.Pointer[error]
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range feed {
					if err := open(j); err != nil {
						firstErr.CompareAndSwap(nil, &err)
					}
				}
			}()
		}
		for _, j := range jobs {
			feed <- j
		}
		close(feed)
		wg.Wait()
		if errp := firstErr.Load(); errp != nil {
			return fail(*errp)
		}
	} else {
		for _, j := range jobs {
			if err := open(j); err != nil {
				return fail(err)
			}
		}
	}
	for i, e := range entries {
		if e.IsRemote() {
			continue // already merged above
		}
		merged, err := e.Sharded().Merge(perRel[i])
		if err != nil {
			return fail(err)
		}
		if x.wrapSource != nil {
			merged = x.wrapSource(merged)
		}
		sources[i] = merged
	}
	return sources, missing, cleanup, nil
}

// wireCombination converts one engine combination into its wire form.
func wireCombination(c proxrank.Combination, entries []*Entry) ResultCombination {
	rc := ResultCombination{Score: c.Score, Tuples: make([]ResultTuple, len(c.Tuples))}
	for j, t := range c.Tuples {
		rc.Tuples[j] = ResultTuple{
			Relation: entries[j].Relation().Name,
			ID:       t.ID,
			Score:    t.Score,
			Vec:      []float64(t.Vec),
			Attrs:    t.Attrs,
		}
	}
	return rc
}

// buildResponse converts an engine result into the wire form.
func buildResponse(res proxrank.Result, entries []*Entry) *QueryResponse {
	out := &QueryResponse{
		Results: make([]ResultCombination, len(res.Combinations)),
		DNF:     res.DNF,
		Cost: QueryCost{
			SumDepths:           res.Stats.SumDepths,
			Depths:              res.Stats.Depths,
			Combinations:        res.Stats.CombinationsFormed,
			BoundUpdates:        res.Stats.BoundUpdates,
			QPSolves:            res.Stats.QPSolves,
			ElapsedMicros:       res.Stats.TotalTime.Microseconds(),
			SpilledCombinations: res.Stats.SpilledCombinations,
			SpilledBytes:        res.Stats.SpilledBytes,
		},
	}
	if t := res.Threshold; !math.IsInf(t, 0) && !math.IsNaN(t) {
		out.Cost.Threshold = &t
	}
	for i, c := range res.Combinations {
		out.Results[i] = wireCombination(c, entries)
	}
	return out
}
