package service

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	proxrank "repro"
)

// Config tunes the executor.
type Config struct {
	// Workers bounds the number of engine executions running at once;
	// excess queries wait for a slot until their context expires. Defaults
	// to GOMAXPROCS.
	Workers int
	// DefaultTimeout is the per-query deadline applied when the request
	// carries none (0 = no default deadline).
	DefaultTimeout time.Duration
	// MaxTimeout caps the deadline a client may request via
	// TimeoutMillis, so one caller cannot pin a worker slot arbitrarily
	// long (0 = DefaultMaxTimeout).
	MaxTimeout time.Duration
	// CacheSize is the LRU result-cache capacity in responses. The zero
	// value takes the default (DefaultCacheSize), matching every other
	// field; pass a negative value to disable caching.
	CacheSize int
	// MaxK rejects requests asking for more than this many results
	// (0 = DefaultMaxK).
	MaxK int
}

// DefaultMaxK caps K when Config.MaxK is unset: a serving layer should
// not materialize unbounded top lists for a single caller.
const DefaultMaxK = 1000

// DefaultMaxTimeout caps client-requested deadlines when
// Config.MaxTimeout is unset.
const DefaultMaxTimeout = time.Minute

// DefaultCacheSize is the result-cache capacity when Config.CacheSize is
// unset.
const DefaultCacheSize = 1024

// QueryRequest is the JSON body of POST /v1/topk. Only Query, Relations
// and K are required; everything else defaults to the paper's best
// configuration (TBPA, distance access, unit weights, log scores).
type QueryRequest struct {
	Query     []float64 `json:"query"`
	Relations []string  `json:"relations"`
	K         int       `json:"k"`
	// Algorithm is one of cbrr|cbpa|tbrr|tbpa (default tbpa).
	Algorithm string `json:"algorithm,omitempty"`
	// Access is distance (default) or score.
	Access string `json:"access,omitempty"`
	// Weights override w_s, w_q, w_mu (all default to 1).
	Weights *WeightsSpec `json:"weights,omitempty"`
	// Transform is log (default) or identity.
	Transform string `json:"transform,omitempty"`
	// Epsilon relaxes the stopping test (0 = exact top-K).
	Epsilon float64 `json:"epsilon,omitempty"`
	// BoundPeriod recomputes the stopping threshold every so many pulls.
	BoundPeriod int `json:"boundPeriod,omitempty"`
	// DominancePeriod enables dominance pruning every so many accesses.
	DominancePeriod int `json:"dominancePeriod,omitempty"`
	// MaxSumDepths / MaxCombinations abort long runs with a DNF result.
	MaxSumDepths    int   `json:"maxSumDepths,omitempty"`
	MaxCombinations int64 `json:"maxCombinations,omitempty"`
	// TimeoutMillis overrides the executor's default per-query deadline.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
	// NoCache bypasses the result cache for this query (it is neither
	// looked up nor stored).
	NoCache bool `json:"noCache,omitempty"`
}

// WeightsSpec mirrors proxrank.Weights in JSON.
type WeightsSpec struct {
	Ws  float64 `json:"ws"`
	Wq  float64 `json:"wq"`
	Wmu float64 `json:"wmu"`
}

// ResultTuple is one member of a result combination.
type ResultTuple struct {
	Relation string            `json:"relation"`
	ID       string            `json:"id"`
	Score    float64           `json:"score"`
	Vec      []float64         `json:"vec"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// ResultCombination is one ranked join result.
type ResultCombination struct {
	Score  float64       `json:"score"`
	Tuples []ResultTuple `json:"tuples"`
}

// QueryCost reports what a query cost the engine — the paper's metrics
// (sumDepths, combinations formed, bound recomputations) plus wall time.
type QueryCost struct {
	SumDepths     int   `json:"sumDepths"`
	Depths        []int `json:"depths"`
	Combinations  int64 `json:"combinations"`
	BoundUpdates  int64 `json:"boundUpdates"`
	QPSolves      int64 `json:"qpSolves,omitempty"`
	ElapsedMicros int64 `json:"elapsedMicros"`
	// Threshold is the final bound; absent when it is not finite (±Inf is
	// not representable in JSON — −Inf after full exhaustion, +Inf when a
	// cap fired before the first bound update).
	Threshold *float64 `json:"threshold,omitempty"`
}

// QueryResponse is the JSON body answering POST /v1/topk. Responses
// returned by Executor.Execute may be shared with its result cache and
// must be treated as read-only.
type QueryResponse struct {
	Results []ResultCombination `json:"results"`
	DNF     bool                `json:"dnf,omitempty"`
	Cached  bool                `json:"cached"`
	Cost    QueryCost           `json:"cost"`
}

// StatsSnapshot is the executor's cumulative view served by GET /v1/stats.
type StatsSnapshot struct {
	Queries           int64 `json:"queries"`
	Completed         int64 `json:"completed"`
	CacheHits         int64 `json:"cacheHits"`
	CacheMisses       int64 `json:"cacheMisses"`
	Coalesced         int64 `json:"coalesced"`
	CacheEntries      int   `json:"cacheEntries"`
	Canceled          int64 `json:"canceled"`
	BadRequests       int64 `json:"badRequests"`
	Failed            int64 `json:"failed"`
	Rejected          int64 `json:"rejected"`
	InFlight          int64 `json:"inFlight"`
	EngineRuns        int64 `json:"engineRuns"`
	TotalSumDepths    int64 `json:"totalSumDepths"`
	TotalCombinations int64 `json:"totalCombinations"`
	TotalBoundUpdates int64 `json:"totalBoundUpdates"`
	TotalEngineMicros int64 `json:"totalEngineMicros"`
}

// Executor answers queries against a catalog through a bounded worker
// pool with per-query deadlines and an LRU result cache. It is safe for
// concurrent use.
type Executor struct {
	cat    *Catalog
	cfg    Config
	slots  chan struct{}
	cache  *resultCache
	flight *flightGroup

	queries           atomic.Int64
	completed         atomic.Int64
	cacheHits         atomic.Int64
	cacheMisses       atomic.Int64
	coalesced         atomic.Int64
	canceled          atomic.Int64
	badRequests       atomic.Int64
	failed            atomic.Int64
	rejected          atomic.Int64
	inFlight          atomic.Int64
	engineRuns        atomic.Int64
	totalSumDepths    atomic.Int64
	totalCombinations atomic.Int64
	totalBoundUpdates atomic.Int64
	totalEngineMicros atomic.Int64
}

// NewExecutor builds an executor over cat.
func NewExecutor(cat *Catalog, cfg Config) *Executor {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = DefaultMaxK
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	return &Executor{
		cat:    cat,
		cfg:    cfg,
		slots:  make(chan struct{}, cfg.Workers),
		cache:  newResultCache(cfg.CacheSize),
		flight: newFlightGroup(),
	}
}

// Stats returns a consistent-enough snapshot of the counters.
func (x *Executor) Stats() StatsSnapshot {
	return StatsSnapshot{
		Queries:           x.queries.Load(),
		Completed:         x.completed.Load(),
		CacheHits:         x.cacheHits.Load(),
		CacheMisses:       x.cacheMisses.Load(),
		Coalesced:         x.coalesced.Load(),
		CacheEntries:      x.cache.len(),
		Canceled:          x.canceled.Load(),
		BadRequests:       x.badRequests.Load(),
		Failed:            x.failed.Load(),
		Rejected:          x.rejected.Load(),
		InFlight:          x.inFlight.Load(),
		EngineRuns:        x.engineRuns.Load(),
		TotalSumDepths:    x.totalSumDepths.Load(),
		TotalCombinations: x.totalCombinations.Load(),
		TotalBoundUpdates: x.totalBoundUpdates.Load(),
		TotalEngineMicros: x.totalEngineMicros.Load(),
	}
}

// options validates the request and translates it into engine options.
func (x *Executor) options(req *QueryRequest) (proxrank.Options, *APIError) {
	var zero proxrank.Options
	if len(req.Query) == 0 {
		return zero, apiErrorf(CodeBadRequest, "query vector is required")
	}
	for i, v := range req.Query {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return zero, apiErrorf(CodeBadRequest, "query component %d is not finite", i)
		}
	}
	if len(req.Relations) < 2 {
		return zero, apiErrorf(CodeBadRequest, "at least two relations are required, got %d", len(req.Relations))
	}
	if req.K < 1 {
		return zero, apiErrorf(CodeBadRequest, "k must be at least 1, got %d", req.K)
	}
	if req.K > x.cfg.MaxK {
		return zero, apiErrorf(CodeBadRequest, "k %d exceeds the server limit %d", req.K, x.cfg.MaxK)
	}
	opts := proxrank.Options{
		K:               req.K,
		Epsilon:         req.Epsilon,
		BoundPeriod:     req.BoundPeriod,
		DominancePeriod: req.DominancePeriod,
		MaxSumDepths:    req.MaxSumDepths,
		MaxCombinations: req.MaxCombinations,
	}
	algo, err := proxrank.ParseAlgorithm(req.Algorithm)
	if err != nil {
		return zero, apiErrorf(CodeBadRequest, "%v", err)
	}
	opts.Algorithm = algo
	switch strings.ToLower(req.Access) {
	case "", "distance":
		opts.Access = proxrank.DistanceAccess
	case "score":
		opts.Access = proxrank.ScoreAccess
	default:
		return zero, apiErrorf(CodeBadRequest, "unknown access kind %q (want distance|score)", req.Access)
	}
	switch strings.ToLower(req.Transform) {
	case "", "log":
		opts.Transform = proxrank.LogScore
	case "identity", "id":
		opts.Transform = proxrank.IdentityScore
	default:
		return zero, apiErrorf(CodeBadRequest, "unknown transform %q (want log|identity)", req.Transform)
	}
	if w := req.Weights; w != nil {
		bad := func(v float64) bool { return v < 0 || math.IsNaN(v) || math.IsInf(v, 0) }
		if bad(w.Ws) || bad(w.Wq) || bad(w.Wmu) {
			return zero, apiErrorf(CodeBadRequest, "weights must be finite non-negative numbers")
		}
		if w.Ws == 0 && w.Wq == 0 && w.Wmu == 0 {
			// The engine treats the zero value as "use unit weights"; an
			// explicit all-zero spec would silently rank by something the
			// caller did not ask for.
			return zero, apiErrorf(CodeBadRequest, "at least one weight must be positive")
		}
		opts.Weights = proxrank.Weights{Ws: w.Ws, Wq: w.Wq, Wmu: w.Wmu}
	}
	if req.Epsilon < 0 || math.IsNaN(req.Epsilon) || math.IsInf(req.Epsilon, 0) {
		return zero, apiErrorf(CodeBadRequest, "epsilon must be finite and non-negative")
	}
	if req.TimeoutMillis < 0 {
		return zero, apiErrorf(CodeBadRequest, "timeoutMillis must be non-negative")
	}
	// The engine reads negative caps/periods as "disabled"; a client
	// sending one almost certainly wanted the opposite, so reject rather
	// than run unbounded.
	if req.MaxSumDepths < 0 || req.MaxCombinations < 0 {
		return zero, apiErrorf(CodeBadRequest, "maxSumDepths and maxCombinations must be non-negative")
	}
	if req.BoundPeriod < 0 || req.DominancePeriod < 0 {
		return zero, apiErrorf(CodeBadRequest, "boundPeriod and dominancePeriod must be non-negative")
	}
	return opts, nil
}

// cacheKey encodes everything the answer depends on: the full option
// set, the query vector bit-exactly, and each relation's name, catalog
// generation (so re-registering a name invalidates its entries), and
// shard count. Sharding does not change answers — the key carries it
// only as a defensive marker of the serving configuration.
func cacheKey(req *QueryRequest, opts proxrank.Options, entries []*Entry) string {
	var b strings.Builder
	b.Grow(64 + 24*len(req.Query) + 24*len(entries))
	b.WriteString("v1|k=")
	b.WriteString(strconv.Itoa(opts.K))
	b.WriteString("|a=")
	b.WriteString(strconv.Itoa(int(opts.Algorithm)))
	b.WriteString("|x=")
	b.WriteString(strconv.Itoa(int(opts.Access)))
	b.WriteString("|t=")
	b.WriteString(strconv.Itoa(int(opts.Transform)))
	b.WriteString("|w=")
	b.WriteString(strconv.FormatFloat(opts.Weights.Ws, 'b', -1, 64))
	b.WriteByte(',')
	b.WriteString(strconv.FormatFloat(opts.Weights.Wq, 'b', -1, 64))
	b.WriteByte(',')
	b.WriteString(strconv.FormatFloat(opts.Weights.Wmu, 'b', -1, 64))
	b.WriteString("|e=")
	b.WriteString(strconv.FormatFloat(opts.Epsilon, 'b', -1, 64))
	b.WriteString("|bp=")
	b.WriteString(strconv.Itoa(opts.BoundPeriod))
	b.WriteString("|dp=")
	b.WriteString(strconv.Itoa(opts.DominancePeriod))
	b.WriteString("|msd=")
	b.WriteString(strconv.Itoa(opts.MaxSumDepths))
	b.WriteString("|mc=")
	b.WriteString(strconv.FormatInt(opts.MaxCombinations, 10))
	b.WriteString("|q=")
	for _, v := range req.Query {
		b.WriteString(strconv.FormatFloat(v, 'b', -1, 64))
		b.WriteByte(',')
	}
	b.WriteString("|r=")
	for _, e := range entries {
		// Length-prefix the name: it is caller-chosen and may contain any
		// delimiter, so bare concatenation could collide across distinct
		// relation lists.
		name := e.Relation().Name
		b.WriteString(strconv.Itoa(len(name)))
		b.WriteByte(':')
		b.WriteString(name)
		b.WriteByte('@')
		b.WriteString(strconv.FormatUint(e.gen, 10))
		b.WriteByte('/')
		b.WriteString(strconv.Itoa(e.Shards()))
		b.WriteByte(',')
	}
	return b.String()
}

// Execute answers one query: resolve the relations, consult the cache,
// coalesce concurrent identical misses into one engine run, wait for a
// worker slot (bounded by the query's deadline), run the engine with
// cancellation, record stats, and cache the outcome.
//
// The returned response may share its Results and Cost.Depths backing
// arrays with the executor's cache — treat it as read-only. Callers that
// need to mutate a response must copy those slices first.
func (x *Executor) Execute(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	x.queries.Add(1)
	// Client mistakes (validation, unknown relations) are tracked apart
	// from Failed so the latter stays a server-health signal.
	opts, aerr := x.options(req)
	if aerr != nil {
		x.badRequests.Add(1)
		return nil, aerr
	}
	entries, err := x.cat.Resolve(req.Relations)
	if err != nil {
		x.badRequests.Add(1)
		return nil, err
	}
	for _, e := range entries {
		rel := e.Relation()
		if rel.Dim() != len(req.Query) {
			x.badRequests.Add(1)
			return nil, apiErrorf(CodeBadRequest, "relation %q has dim %d, query has dim %d",
				rel.Name, rel.Dim(), len(req.Query))
		}
	}
	if req.NoCache || !x.cache.enabled() {
		ctx, cancel := x.applyDeadline(ctx, req)
		defer cancel()
		return x.run(ctx, req, opts, entries, "", false)
	}
	key := cacheKey(req, opts, entries)
	if cached, ok := x.cache.get(key); ok {
		x.cacheHits.Add(1)
		hit := *cached // shallow copy; cached value stays immutable
		hit.Cached = true
		return &hit, nil
	}
	x.cacheMisses.Add(1)
	// The deadline is applied before the flight so a follower's wait is
	// bounded by its own requested timeout, not the leader's.
	ctx, cancel := x.applyDeadline(ctx, req)
	defer cancel()
	// Single-flight: identical concurrent misses run the engine once. The
	// leader executes; followers wait for its outcome. A leader failure is
	// not shared — its error may be specific to its own deadline — so each
	// waiting follower retries, one of them becoming the next leader.
	for {
		c, leader := x.flight.join(key)
		if leader {
			finished := false
			// If a panic unwinds through the engine run, retire the flight
			// before it continues so followers are woken to retry instead
			// of waiting forever on a key that can never complete.
			defer func() {
				if !finished {
					x.flight.leave(key, c, nil, apiErrorf(CodeInternal, "query leader aborted"))
				}
			}()
			resp, err := x.run(ctx, req, opts, entries, key, true)
			finished = true
			x.flight.leave(key, c, resp, err)
			return resp, err
		}
		select {
		case <-c.done:
			if c.err != nil {
				continue
			}
			x.coalesced.Add(1)
			hit := *c.resp // shallow copy, like a cache hit
			hit.Cached = true
			return &hit, nil
		case <-ctx.Done():
			x.canceled.Add(1)
			return nil, asAPIError(ctx.Err())
		}
	}
}

// applyDeadline wraps ctx with the query's effective deadline: the
// clamped client-requested TimeoutMillis, else the configured default.
// The returned cancel is never nil.
func (x *Executor) applyDeadline(ctx context.Context, req *QueryRequest) (context.Context, context.CancelFunc) {
	if req.TimeoutMillis > 0 {
		// Clamp in milliseconds before converting: a huge TimeoutMillis
		// would overflow the Duration multiply into a negative (instantly
		// expired) deadline.
		millis := req.TimeoutMillis
		if maxMillis := x.cfg.MaxTimeout.Milliseconds(); millis > maxMillis {
			millis = maxMillis
		}
		return context.WithTimeout(ctx, time.Duration(millis)*time.Millisecond)
	}
	if x.cfg.DefaultTimeout > 0 {
		return context.WithTimeout(ctx, x.cfg.DefaultTimeout)
	}
	return ctx, func() {}
}

// run executes the engine for one resolved query under an
// already-deadlined context: acquire a worker slot, fan out per-shard
// source creation, run with cancellation, record stats, and (when store
// is set) cache the response under key.
func (x *Executor) run(ctx context.Context, req *QueryRequest, opts proxrank.Options, entries []*Entry, key string, store bool) (*QueryResponse, error) {
	if err := ctx.Err(); err != nil {
		x.canceled.Add(1)
		return nil, asAPIError(err)
	}

	// Acquire a worker slot; a query that cannot start before its
	// deadline is shed rather than queued forever.
	select {
	case x.slots <- struct{}{}:
		defer func() { <-x.slots }()
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.Canceled) {
			// The caller went away while queued — that is cancellation,
			// not overload; counting it as rejected would fake a capacity
			// signal out of ordinary client disconnects.
			x.canceled.Add(1)
			return nil, asAPIError(ctx.Err())
		}
		x.rejected.Add(1)
		return nil, apiErrorf(CodeOverloaded, "no worker available before the deadline: %v", ctx.Err())
	}
	x.inFlight.Add(1)
	defer x.inFlight.Add(-1)

	query := proxrank.Vector(req.Query)
	sources, aerr := x.buildSources(opts, query, entries)
	if aerr != nil {
		x.failed.Add(1)
		return nil, aerr
	}

	x.engineRuns.Add(1)
	res, err := proxrank.TopKFromSourcesContext(ctx, query, sources, opts)
	if err != nil {
		ae := asAPIError(err)
		if ae.Code == CodeTimeout || ae.Code == CodeCanceled {
			x.canceled.Add(1)
		} else {
			x.failed.Add(1)
		}
		return nil, ae
	}

	resp := buildResponse(res, entries)
	x.completed.Add(1)
	x.totalSumDepths.Add(int64(res.Stats.SumDepths))
	x.totalCombinations.Add(res.Stats.CombinationsFormed)
	x.totalBoundUpdates.Add(res.Stats.BoundUpdates)
	x.totalEngineMicros.Add(res.Stats.TotalTime.Microseconds())
	if store {
		x.cache.put(key, resp)
	}
	return resp, nil
}

// buildSources opens one engine stream per relation: every shard of every
// relation gets its ordered source, creation fans out across a bounded
// pool when the entries hold more than one shard in total, and each
// relation's shard streams are merged back into its canonical order. The
// dim pre-check in Execute already rules out the only documented source
// failure; anything surfacing here is a server-side problem, which the
// caller reports as internal.
func (x *Executor) buildSources(opts proxrank.Options, query proxrank.Vector, entries []*Entry) ([]proxrank.Source, *APIError) {
	type job struct{ rel, shard int }
	var jobs []job
	perRel := make([][]proxrank.Source, len(entries))
	for i, e := range entries {
		n := e.Shards()
		perRel[i] = make([]proxrank.Source, n)
		for s := 0; s < n; s++ {
			jobs = append(jobs, job{rel: i, shard: s})
		}
	}
	open := func(j job) error {
		e := entries[j.rel]
		src, err := e.Sharded().ShardSource(j.shard, opts.Access, query, nil, true)
		if err != nil {
			return err
		}
		perRel[j.rel][j.shard] = src
		return nil
	}
	// Opening an in-memory shard source is cheap (a cursor or an O(1)
	// traversal setup), so the pool only pays for itself on wide fan-outs;
	// below the threshold a sequential loop is strictly faster than
	// spawning goroutines per query.
	const fanOutThreshold = 16
	if workers := min(x.cfg.Workers, len(jobs)); workers > 1 && len(jobs) >= fanOutThreshold {
		feed := make(chan job)
		var wg sync.WaitGroup
		var firstErr atomic.Pointer[error]
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range feed {
					if err := open(j); err != nil {
						firstErr.CompareAndSwap(nil, &err)
					}
				}
			}()
		}
		for _, j := range jobs {
			feed <- j
		}
		close(feed)
		wg.Wait()
		if errp := firstErr.Load(); errp != nil {
			return nil, apiErrorf(CodeInternal, "%v", *errp)
		}
	} else {
		for _, j := range jobs {
			if err := open(j); err != nil {
				return nil, apiErrorf(CodeInternal, "%v", err)
			}
		}
	}
	sources := make([]proxrank.Source, len(entries))
	for i, e := range entries {
		merged, err := e.Sharded().Merge(perRel[i])
		if err != nil {
			return nil, apiErrorf(CodeInternal, "%v", err)
		}
		sources[i] = merged
	}
	return sources, nil
}

// buildResponse converts an engine result into the wire form.
func buildResponse(res proxrank.Result, entries []*Entry) *QueryResponse {
	out := &QueryResponse{
		Results: make([]ResultCombination, len(res.Combinations)),
		DNF:     res.DNF,
		Cost: QueryCost{
			SumDepths:     res.Stats.SumDepths,
			Depths:        res.Stats.Depths,
			Combinations:  res.Stats.CombinationsFormed,
			BoundUpdates:  res.Stats.BoundUpdates,
			QPSolves:      res.Stats.QPSolves,
			ElapsedMicros: res.Stats.TotalTime.Microseconds(),
		},
	}
	if t := res.Threshold; !math.IsInf(t, 0) && !math.IsNaN(t) {
		out.Cost.Threshold = &t
	}
	for i, c := range res.Combinations {
		rc := ResultCombination{Score: c.Score, Tuples: make([]ResultTuple, len(c.Tuples))}
		for j, t := range c.Tuples {
			rc.Tuples[j] = ResultTuple{
				Relation: entries[j].Relation().Name,
				ID:       t.ID,
				Score:    t.Score,
				Vec:      []float64(t.Vec),
				Attrs:    t.Attrs,
			}
		}
		out.Results[i] = rc
	}
	return out
}
