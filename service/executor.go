package service

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	proxrank "repro"
	"repro/api"
)

// Config tunes the executor.
type Config struct {
	// Workers bounds the number of engine executions running at once;
	// excess queries wait for a slot until their context expires. Defaults
	// to GOMAXPROCS.
	Workers int
	// DefaultTimeout is the per-query deadline applied when the request
	// carries none (0 = no default deadline).
	DefaultTimeout time.Duration
	// MaxTimeout caps the deadline a client may request via
	// TimeoutMillis, so one caller cannot pin a worker slot arbitrarily
	// long (0 = DefaultMaxTimeout).
	MaxTimeout time.Duration
	// CacheSize is the LRU result-cache capacity in responses. The zero
	// value takes the default (DefaultCacheSize), matching every other
	// field; pass a negative value to disable caching.
	CacheSize int
	// MaxK rejects requests asking for more than this many results
	// (0 = DefaultMaxK).
	MaxK int
}

// DefaultMaxK caps K when Config.MaxK is unset: a serving layer should
// not materialize unbounded top lists for a single caller.
const DefaultMaxK = 1000

// DefaultMaxTimeout caps client-requested deadlines when
// Config.MaxTimeout is unset.
const DefaultMaxTimeout = time.Minute

// DefaultCacheSize is the result-cache capacity when Config.CacheSize is
// unset.
const DefaultCacheSize = 1024

// The service speaks the transport-neutral api model; these aliases keep
// the historical service names compiling while guaranteeing the wire
// shape is defined in exactly one place.
type (
	// QueryRequest is the JSON body of POST /v1/query (and the legacy
	// POST /v1/topk).
	QueryRequest = api.Request
	// WeightsSpec mirrors proxrank.Weights in JSON.
	WeightsSpec = api.Weights
	// ResultTuple is one member of a result combination.
	ResultTuple = api.Tuple
	// ResultCombination is one ranked join result.
	ResultCombination = api.Combination
	// QueryCost reports what a query cost the engine.
	QueryCost = api.Cost
	// QueryResponse is the JSON body answering a batch query. Responses
	// returned by Executor.Execute may be shared with its result cache
	// and must be treated as read-only.
	QueryResponse = api.Response
)

// EventSink receives streaming result events in order. A sink returning
// an error aborts the run; the executor treats that as the caller going
// away (the engine work is discarded, not cached).
type EventSink func(api.ResultEvent) error

// StatsSnapshot is the executor's cumulative view served by GET /v1/stats.
type StatsSnapshot struct {
	Queries           int64 `json:"queries"`
	Streamed          int64 `json:"streamed"`
	Completed         int64 `json:"completed"`
	CacheHits         int64 `json:"cacheHits"`
	CacheMisses       int64 `json:"cacheMisses"`
	Coalesced         int64 `json:"coalesced"`
	CacheEntries      int   `json:"cacheEntries"`
	Canceled          int64 `json:"canceled"`
	BadRequests       int64 `json:"badRequests"`
	Failed            int64 `json:"failed"`
	Rejected          int64 `json:"rejected"`
	InFlight          int64 `json:"inFlight"`
	EngineRuns        int64 `json:"engineRuns"`
	TotalSumDepths    int64 `json:"totalSumDepths"`
	TotalCombinations int64 `json:"totalCombinations"`
	TotalBoundUpdates int64 `json:"totalBoundUpdates"`
	TotalEngineMicros int64 `json:"totalEngineMicros"`
}

// Executor answers queries against a catalog through a bounded worker
// pool with per-query deadlines and an LRU result cache. Batch
// (Execute) and streaming (ExecuteStream) consumption share one
// validation path, one canonical cache key, and one single-flight
// group, so identical concurrent queries coalesce across consumption
// models. It is safe for concurrent use.
type Executor struct {
	cat    *Catalog
	cfg    Config
	slots  chan struct{}
	cache  *resultCache
	flight *flightGroup

	// wrapSource, when set (tests only), wraps each relation's merged
	// source before the engine reads it — the hook used to prove
	// incremental delivery against a deliberately slow source.
	wrapSource func(proxrank.Source) proxrank.Source

	queries           atomic.Int64
	streamed          atomic.Int64
	completed         atomic.Int64
	cacheHits         atomic.Int64
	cacheMisses       atomic.Int64
	coalesced         atomic.Int64
	canceled          atomic.Int64
	badRequests       atomic.Int64
	failed            atomic.Int64
	rejected          atomic.Int64
	inFlight          atomic.Int64
	engineRuns        atomic.Int64
	totalSumDepths    atomic.Int64
	totalCombinations atomic.Int64
	totalBoundUpdates atomic.Int64
	totalEngineMicros atomic.Int64
}

// NewExecutor builds an executor over cat.
func NewExecutor(cat *Catalog, cfg Config) *Executor {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = DefaultMaxK
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	return &Executor{
		cat:    cat,
		cfg:    cfg,
		slots:  make(chan struct{}, cfg.Workers),
		cache:  newResultCache(cfg.CacheSize),
		flight: newFlightGroup(),
	}
}

// Stats returns a consistent-enough snapshot of the counters.
func (x *Executor) Stats() StatsSnapshot {
	return StatsSnapshot{
		Queries:           x.queries.Load(),
		Streamed:          x.streamed.Load(),
		Completed:         x.completed.Load(),
		CacheHits:         x.cacheHits.Load(),
		CacheMisses:       x.cacheMisses.Load(),
		Coalesced:         x.coalesced.Load(),
		CacheEntries:      x.cache.len(),
		Canceled:          x.canceled.Load(),
		BadRequests:       x.badRequests.Load(),
		Failed:            x.failed.Load(),
		Rejected:          x.rejected.Load(),
		InFlight:          x.inFlight.Load(),
		EngineRuns:        x.engineRuns.Load(),
		TotalSumDepths:    x.totalSumDepths.Load(),
		TotalCombinations: x.totalCombinations.Load(),
		TotalBoundUpdates: x.totalBoundUpdates.Load(),
		TotalEngineMicros: x.totalEngineMicros.Load(),
	}
}

// prepare runs the shared front half of every execution path: central
// validation and defaulting via api.Request.Normalize (with the server's
// K limit), translation into engine options, catalog resolution, and the
// dimensionality pre-check. The caller's request is never mutated —
// normalization happens on a private copy (callers may legally share one
// request across concurrent queries), which is returned for canonical
// cache keying. Client mistakes are tracked apart from Failed so the
// latter stays a server-health signal.
func (x *Executor) prepare(req *QueryRequest) (*QueryRequest, proxrank.Vector, proxrank.Options, []*Entry, *APIError) {
	// Shallow copy is enough: Normalize rewrites fields of the copy and
	// only ever replaces (never writes through) the Weights pointer.
	norm := *req
	query, opts, err := proxrank.OptionsFromRequest(&norm, api.Limits{MaxK: x.cfg.MaxK})
	if err != nil {
		x.badRequests.Add(1)
		return nil, nil, proxrank.Options{}, nil, asAPIError(err)
	}
	entries, err := x.cat.Resolve(norm.Relations)
	if err != nil {
		x.badRequests.Add(1)
		return nil, nil, proxrank.Options{}, nil, asAPIError(err)
	}
	for _, e := range entries {
		rel := e.Relation()
		if rel.Dim() != len(norm.Query) {
			x.badRequests.Add(1)
			return nil, nil, proxrank.Options{}, nil, apiErrorf(CodeBadRequest, "relation %q has dim %d, query has dim %d",
				rel.Name, rel.Dim(), len(norm.Query))
		}
	}
	return &norm, query, opts, entries, nil
}

// cacheKey is the canonical encoding of the normalized request (see
// api.Request.Canonical) suffixed with each resolved relation's catalog
// generation — so re-registering a name invalidates its entries — and
// shard count. Sharding does not change answers; the key carries it only
// as a defensive marker of the serving configuration. The generations
// align positionally with the request's relation list, which the
// canonical encoding already names.
func cacheKey(req *QueryRequest, entries []*Entry) string {
	canon := req.Canonical()
	var b strings.Builder
	b.Grow(len(canon) + 3 + 16*len(entries))
	b.WriteString(canon)
	b.WriteString("|g=")
	for _, e := range entries {
		b.WriteString(strconv.FormatUint(e.gen, 10))
		b.WriteByte('/')
		b.WriteString(strconv.Itoa(e.Shards()))
		b.WriteByte(',')
	}
	return b.String()
}

// Execute answers one query: validate and default through the api
// model, resolve the relations, consult the cache, coalesce concurrent
// identical misses into one engine run, wait for a worker slot (bounded
// by the query's deadline), run the engine with cancellation, record
// stats, and cache the outcome.
//
// The returned response may share its Results and Cost.Depths backing
// arrays with the executor's cache — treat it as read-only. Callers that
// need to mutate a response must copy those slices first.
func (x *Executor) Execute(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	x.queries.Add(1)
	norm, query, opts, entries, aerr := x.prepare(req)
	if aerr != nil {
		return nil, aerr
	}
	req = norm
	if req.NoCache || !x.cache.enabled() {
		ctx, cancel := x.applyDeadline(ctx, req)
		defer cancel()
		return x.run(ctx, query, opts, entries, "", false)
	}
	key := cacheKey(req, entries)
	if cached, ok := x.cache.get(key); ok {
		x.cacheHits.Add(1)
		hit := *cached // shallow copy; cached value stays immutable
		hit.Cached = true
		return &hit, nil
	}
	x.cacheMisses.Add(1)
	// The deadline is applied before the flight so a follower's wait is
	// bounded by its own requested timeout, not the leader's.
	ctx, cancel := x.applyDeadline(ctx, req)
	defer cancel()
	// Single-flight: identical concurrent misses run the engine once. The
	// leader executes; followers wait for its outcome. A leader failure is
	// not shared — its error may be specific to its own deadline — so each
	// waiting follower retries, one of them becoming the next leader.
	for {
		c, leader := x.flight.join(key)
		if leader {
			finished := false
			// If a panic unwinds through the engine run, retire the flight
			// before it continues so followers are woken to retry instead
			// of waiting forever on a key that can never complete.
			defer func() {
				if !finished {
					x.flight.leave(key, c, nil, apiErrorf(CodeInternal, "query leader aborted"))
				}
			}()
			resp, err := x.run(ctx, query, opts, entries, key, true)
			finished = true
			x.flight.leave(key, c, resp, err)
			return resp, err
		}
		select {
		case <-c.done:
			if c.err != nil {
				continue
			}
			x.coalesced.Add(1)
			hit := *c.resp // shallow copy, like a cache hit
			hit.Cached = true
			return &hit, nil
		case <-ctx.Done():
			x.canceled.Add(1)
			return nil, asAPIError(ctx.Err())
		}
	}
}

// ExecuteStream answers one query incrementally: result events reach the
// sink as the engine certifies each combination — the first one long
// before the run completes — followed by exactly one summary event. The
// collected results are byte-identical to what Execute returns for the
// same request: both paths share validation, the canonical cache key,
// the result cache (a hit or a coalesced follower replays the cached
// response as events, summary marked cached), and the single-flight
// group.
//
// Validation and resolution failures are returned before the sink sees
// any event, so transports can still answer with a plain error; once
// events have flowed, a failure is returned after them and the transport
// appends it in-band.
//
// A streaming leader advances at the pace of its sink: a slow consumer
// holds its worker slot longer and delays coalesced followers of the
// same key, whose waits stay bounded by their own deadlines (a follower
// that cannot wait should send NoCache to fork a private run). See
// ROADMAP: decoupling delivery from the engine via a bounded event
// buffer.
func (x *Executor) ExecuteStream(ctx context.Context, req *QueryRequest, sink EventSink) error {
	x.queries.Add(1)
	x.streamed.Add(1)
	norm, query, opts, entries, aerr := x.prepare(req)
	if aerr != nil {
		return aerr
	}
	req = norm
	if req.NoCache || !x.cache.enabled() {
		ctx, cancel := x.applyDeadline(ctx, req)
		defer cancel()
		_, err := x.runStream(ctx, query, opts, entries, "", false, sink)
		return err
	}
	key := cacheKey(req, entries)
	if cached, ok := x.cache.get(key); ok {
		x.cacheHits.Add(1)
		return replayResponse(cached, sink)
	}
	x.cacheMisses.Add(1)
	ctx, cancel := x.applyDeadline(ctx, req)
	defer cancel()
	for {
		c, leader := x.flight.join(key)
		if leader {
			finished := false
			defer func() {
				if !finished {
					x.flight.leave(key, c, nil, apiErrorf(CodeInternal, "query leader aborted"))
				}
			}()
			resp, err := x.runStream(ctx, query, opts, entries, key, true, sink)
			finished = true
			x.flight.leave(key, c, resp, err)
			return err
		}
		select {
		case <-c.done:
			if c.err != nil {
				continue
			}
			x.coalesced.Add(1)
			return replayResponse(c.resp, sink)
		case <-ctx.Done():
			x.canceled.Add(1)
			return asAPIError(ctx.Err())
		}
	}
}

// replayResponse streams an already-computed response as events, summary
// marked cached — the follower/cache-hit half of ExecuteStream.
func replayResponse(resp *QueryResponse, sink EventSink) error {
	for i := range resp.Results {
		ev := api.ResultEvent{Type: api.EventResult, Rank: i + 1, Result: &resp.Results[i]}
		if err := sink(ev); err != nil {
			return asAPIError(err)
		}
	}
	return sink(api.ResultEvent{Type: api.EventSummary, Summary: &api.Summary{
		Count:  len(resp.Results),
		DNF:    resp.DNF,
		Cached: true,
		Cost:   resp.Cost,
	}})
}

// applyDeadline wraps ctx with the query's effective deadline: the
// clamped client-requested TimeoutMillis, else the configured default.
// The returned cancel is never nil.
func (x *Executor) applyDeadline(ctx context.Context, req *QueryRequest) (context.Context, context.CancelFunc) {
	if req.TimeoutMillis > 0 {
		// Clamp in milliseconds before converting: a huge TimeoutMillis
		// would overflow the Duration multiply into a negative (instantly
		// expired) deadline.
		millis := req.TimeoutMillis
		if maxMillis := x.cfg.MaxTimeout.Milliseconds(); millis > maxMillis {
			millis = maxMillis
		}
		return context.WithTimeout(ctx, time.Duration(millis)*time.Millisecond)
	}
	if x.cfg.DefaultTimeout > 0 {
		return context.WithTimeout(ctx, x.cfg.DefaultTimeout)
	}
	return ctx, func() {}
}

// acquireSlot claims a worker slot, bounded by the query's deadline; a
// query that cannot start before its deadline is shed rather than queued
// forever. The release func is nil exactly when an error is returned.
func (x *Executor) acquireSlot(ctx context.Context) (func(), *APIError) {
	select {
	case x.slots <- struct{}{}:
		x.inFlight.Add(1)
		return func() {
			x.inFlight.Add(-1)
			<-x.slots
		}, nil
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.Canceled) {
			// The caller went away while queued — that is cancellation,
			// not overload; counting it as rejected would fake a capacity
			// signal out of ordinary client disconnects.
			x.canceled.Add(1)
			return nil, asAPIError(ctx.Err())
		}
		x.rejected.Add(1)
		return nil, apiErrorf(CodeOverloaded, "no worker available before the deadline: %v", ctx.Err())
	}
}

// recordOutcome folds one finished engine run into the counters.
func (x *Executor) recordOutcome(stats proxrank.Stats) {
	x.completed.Add(1)
	x.totalSumDepths.Add(int64(stats.SumDepths))
	x.totalCombinations.Add(stats.CombinationsFormed)
	x.totalBoundUpdates.Add(stats.BoundUpdates)
	x.totalEngineMicros.Add(stats.TotalTime.Microseconds())
}

// classifyRunError records the failure counters for an engine-run error
// and returns its API form.
func (x *Executor) classifyRunError(err error) *APIError {
	ae := asAPIError(err)
	if ae.Code == CodeTimeout || ae.Code == CodeCanceled {
		x.canceled.Add(1)
	} else {
		x.failed.Add(1)
	}
	return ae
}

// run executes the engine for one resolved query under an
// already-deadlined context: acquire a worker slot, fan out per-shard
// source creation, run with cancellation, record stats, and (when store
// is set) cache the response under key.
func (x *Executor) run(ctx context.Context, query proxrank.Vector, opts proxrank.Options, entries []*Entry, key string, store bool) (*QueryResponse, error) {
	if err := ctx.Err(); err != nil {
		x.canceled.Add(1)
		return nil, asAPIError(err)
	}
	release, aerr := x.acquireSlot(ctx)
	if aerr != nil {
		return nil, aerr
	}
	defer release()

	sources, aerr := x.buildSources(opts, query, entries)
	if aerr != nil {
		x.failed.Add(1)
		return nil, aerr
	}

	x.engineRuns.Add(1)
	res, err := proxrank.TopKFromSourcesContext(ctx, query, sources, opts)
	if err != nil {
		return nil, x.classifyRunError(err)
	}

	resp := buildResponse(res, entries)
	x.recordOutcome(res.Stats)
	if store {
		x.cache.put(key, resp)
	}
	return resp, nil
}

// runStream is run's incremental twin: the same slot, source fan-out,
// stats, and caching discipline, but the engine is driven through a
// Query session and every certified combination is handed to the sink
// the moment it exists. A capped run streams its best-effort tail too
// (so collected results match the batch DNF response) and flags DNF on
// the summary.
func (x *Executor) runStream(ctx context.Context, query proxrank.Vector, opts proxrank.Options, entries []*Entry, key string, store bool, sink EventSink) (*QueryResponse, error) {
	if err := ctx.Err(); err != nil {
		x.canceled.Add(1)
		return nil, asAPIError(err)
	}
	release, aerr := x.acquireSlot(ctx)
	if aerr != nil {
		return nil, aerr
	}
	defer release()

	sources, aerr := x.buildSources(opts, query, entries)
	if aerr != nil {
		x.failed.Add(1)
		return nil, aerr
	}
	// A streamed query delivers at most K results (certified prefix plus
	// DNF drain), so the session buffer is bounded to K exactly like the
	// batch path — O(K) peak memory per run, byte-identical events.
	// Validation guarantees an explicit client MaxBuffered is >= K.
	q, err := proxrank.NewQuerySources(query, sources, opts.BoundedToK())
	if err != nil {
		x.failed.Add(1)
		return nil, asAPIError(err)
	}

	x.engineRuns.Add(1)
	var combos []proxrank.Combination
	emit := func(c proxrank.Combination) error {
		combos = append(combos, c)
		wire := wireCombination(c, entries)
		return sink(api.ResultEvent{Type: api.EventResult, Rank: len(combos), Result: &wire})
	}
	dnf := false
pull:
	for len(combos) < opts.K {
		batch, err := q.NextContext(ctx, 1)
		for _, c := range batch {
			if serr := emit(c); serr != nil {
				x.canceled.Add(1)
				return nil, apiErrorf(CodeCanceled, "stream sink: %v", serr)
			}
		}
		switch {
		case err == nil:
		case errors.Is(err, proxrank.ErrStreamDone):
			break pull
		case errors.Is(err, proxrank.ErrDNF):
			// Batch DNF contract, streamed: deliver the uncertified
			// best-effort tail in report order, then flag the summary.
			dnf = true
			for _, c := range q.DrainBest(opts.K - len(combos)) {
				if serr := emit(c); serr != nil {
					x.canceled.Add(1)
					return nil, apiErrorf(CodeCanceled, "stream sink: %v", serr)
				}
			}
			break pull
		default:
			return nil, x.classifyRunError(err)
		}
	}

	res := proxrank.Result{
		Combinations: combos,
		Threshold:    q.Threshold(),
		DNF:          dnf,
		Stats:        q.Stats(),
	}
	resp := buildResponse(res, entries)
	x.recordOutcome(res.Stats)
	if store {
		x.cache.put(key, resp)
	}
	if serr := sink(api.ResultEvent{Type: api.EventSummary, Summary: &api.Summary{
		Count:  len(resp.Results),
		DNF:    resp.DNF,
		Cached: false,
		Cost:   resp.Cost,
	}}); serr != nil {
		return resp, apiErrorf(CodeCanceled, "stream sink: %v", serr)
	}
	return resp, nil
}

// buildSources opens one engine stream per relation: every shard of every
// relation gets its ordered source, creation fans out across a bounded
// pool when the entries hold more than one shard in total, and each
// relation's shard streams are merged back into its canonical order. The
// dim pre-check in prepare already rules out the only documented source
// failure; anything surfacing here is a server-side problem, which the
// caller reports as internal.
func (x *Executor) buildSources(opts proxrank.Options, query proxrank.Vector, entries []*Entry) ([]proxrank.Source, *APIError) {
	type job struct{ rel, shard int }
	var jobs []job
	perRel := make([][]proxrank.Source, len(entries))
	for i, e := range entries {
		n := e.Shards()
		perRel[i] = make([]proxrank.Source, n)
		for s := 0; s < n; s++ {
			jobs = append(jobs, job{rel: i, shard: s})
		}
	}
	open := func(j job) error {
		e := entries[j.rel]
		src, err := e.Sharded().ShardSource(j.shard, opts.Access, query, nil, true)
		if err != nil {
			return err
		}
		perRel[j.rel][j.shard] = src
		return nil
	}
	// Opening an in-memory shard source is cheap (a cursor or an O(1)
	// traversal setup), so the pool only pays for itself on wide fan-outs;
	// below the threshold a sequential loop is strictly faster than
	// spawning goroutines per query.
	const fanOutThreshold = 16
	if workers := min(x.cfg.Workers, len(jobs)); workers > 1 && len(jobs) >= fanOutThreshold {
		feed := make(chan job)
		var wg sync.WaitGroup
		var firstErr atomic.Pointer[error]
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range feed {
					if err := open(j); err != nil {
						firstErr.CompareAndSwap(nil, &err)
					}
				}
			}()
		}
		for _, j := range jobs {
			feed <- j
		}
		close(feed)
		wg.Wait()
		if errp := firstErr.Load(); errp != nil {
			return nil, apiErrorf(CodeInternal, "%v", *errp)
		}
	} else {
		for _, j := range jobs {
			if err := open(j); err != nil {
				return nil, apiErrorf(CodeInternal, "%v", err)
			}
		}
	}
	sources := make([]proxrank.Source, len(entries))
	for i, e := range entries {
		merged, err := e.Sharded().Merge(perRel[i])
		if err != nil {
			return nil, apiErrorf(CodeInternal, "%v", err)
		}
		if x.wrapSource != nil {
			merged = x.wrapSource(merged)
		}
		sources[i] = merged
	}
	return sources, nil
}

// wireCombination converts one engine combination into its wire form.
func wireCombination(c proxrank.Combination, entries []*Entry) ResultCombination {
	rc := ResultCombination{Score: c.Score, Tuples: make([]ResultTuple, len(c.Tuples))}
	for j, t := range c.Tuples {
		rc.Tuples[j] = ResultTuple{
			Relation: entries[j].Relation().Name,
			ID:       t.ID,
			Score:    t.Score,
			Vec:      []float64(t.Vec),
			Attrs:    t.Attrs,
		}
	}
	return rc
}

// buildResponse converts an engine result into the wire form.
func buildResponse(res proxrank.Result, entries []*Entry) *QueryResponse {
	out := &QueryResponse{
		Results: make([]ResultCombination, len(res.Combinations)),
		DNF:     res.DNF,
		Cost: QueryCost{
			SumDepths:     res.Stats.SumDepths,
			Depths:        res.Stats.Depths,
			Combinations:  res.Stats.CombinationsFormed,
			BoundUpdates:  res.Stats.BoundUpdates,
			QPSolves:      res.Stats.QPSolves,
			ElapsedMicros: res.Stats.TotalTime.Microseconds(),
		},
	}
	if t := res.Threshold; !math.IsInf(t, 0) && !math.IsNaN(t) {
		out.Cost.Threshold = &t
	}
	for i, c := range res.Combinations {
		out.Results[i] = wireCombination(c, entries)
	}
	return out
}
