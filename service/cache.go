package service

import (
	"container/list"
	"sync"
)

// resultCache is a mutex-guarded LRU over finished query responses. The
// cached values are treated as immutable — readers get the shared pointer
// and must copy before mutating (the executor stamps the Cached flag on a
// copy). Keys encode everything the answer depends on, including catalog
// generations, so eviction + re-registration can never serve stale rows.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheSlot struct {
	key string
	val *QueryResponse
}

// newResultCache returns a cache holding up to capacity responses;
// capacity <= 0 disables caching entirely.
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// enabled reports whether the cache stores anything at all.
func (c *resultCache) enabled() bool { return c.cap > 0 }

// get returns the cached response for key and marks it most recently
// used.
func (c *resultCache) get(key string) (*QueryResponse, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheSlot).val, true
}

// put stores a response, evicting the least recently used entry beyond
// capacity.
func (c *resultCache) put(key string, val *QueryResponse) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheSlot).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheSlot{key: key, val: val})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheSlot).key)
	}
}

// len returns the number of cached responses.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
