package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/api"
	"repro/internal/obs"
)

// scrape fetches /metrics, validates the exposition, and returns the
// body.
func scrape(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
	return string(body)
}

// familySum adds up every sample of name (all label sets) in an
// exposition body.
func familySum(t *testing.T, body, name string) float64 {
	t.Helper()
	total, seen := 0.0, false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		// Exact name: next char is '{' (labels) or a space (plain sample);
		// anything else is a longer name sharing the prefix.
		if !strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, " ") {
			continue
		}
		fields := strings.Fields(line)
		var v float64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &v); err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		total += v
		seen = true
	}
	if !seen {
		t.Fatalf("no samples for family %s", name)
	}
	return total
}

// drainStream posts one streaming query and reads NDJSON lines to the
// end, returning the raw event lines.
func drainStream(t *testing.T, baseURL string, req *QueryRequest) []string {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(baseURL+"/v1/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range strings.Split(string(raw), "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	return lines
}

// TestMetricsInvariants runs a small mixed batch/stream workload over
// HTTP and asserts the accounting identities the families promise:
// cache hits plus misses equal the requests that consulted the cache,
// the per-request histograms saw every request, and TTFE never exceeds
// total latency.
func TestMetricsInvariants(t *testing.T) {
	srv, names, _ := testServer(t)

	// 4 distinct queries, each asked twice batch and once streamed: the
	// repeats are cache hits.
	for i := 0; i < 4; i++ {
		req := &QueryRequest{Query: []float64{float64(i) * 0.03, -0.1}, Relations: names, K: 3}
		for rep := 0; rep < 2; rep++ {
			body, _ := json.Marshal(req)
			resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("batch status %d", resp.StatusCode)
			}
		}
		drainStream(t, srv.URL, req)
	}

	body := scrape(t, srv.URL)
	queries := familySum(t, body, "proxrank_queries_total")
	hits := familySum(t, body, "proxrank_cache_hits_total")
	misses := familySum(t, body, "proxrank_cache_misses_total")
	if queries != 12 {
		t.Fatalf("queries_total = %v, want 12", queries)
	}
	// Every request here was cacheable, so each either hit or missed.
	if hits+misses != queries {
		t.Fatalf("hits(%v) + misses(%v) != queries(%v)", hits, misses, queries)
	}
	if hits < 4 {
		t.Fatalf("hits = %v, want >= 4 (each repeated query)", hits)
	}
	durCount := familySum(t, body, "proxrank_query_duration_seconds_count")
	if durCount != queries {
		t.Fatalf("duration histogram saw %v requests, want %v", durCount, queries)
	}
	ttfeCount := familySum(t, body, "proxrank_query_ttfe_seconds_count")
	if ttfeCount != queries {
		t.Fatalf("ttfe histogram saw %v requests, want %v", ttfeCount, queries)
	}
	// TTFE <= total duration per request, so the sums obey it too.
	durSum := familySum(t, body, "proxrank_query_duration_seconds_sum")
	ttfeSum := familySum(t, body, "proxrank_query_ttfe_seconds_sum")
	if ttfeSum > durSum {
		t.Fatalf("ttfe sum %v exceeds duration sum %v", ttfeSum, durSum)
	}
	// The engine cost distribution saw every engine run.
	runs := familySum(t, body, "proxrank_engine_runs_total")
	depthCount := familySum(t, body, "proxrank_engine_sum_depths_count")
	if depthCount != runs {
		t.Fatalf("sum_depths histogram saw %v runs, want %v", depthCount, runs)
	}
}

// TestStatsAndMetricsAgree asserts the two observability surfaces are
// fed by the same counters: after a workload, GET /v1/stats and GET
// /metrics report identical numbers.
func TestStatsAndMetricsAgree(t *testing.T) {
	srv, names, _ := testServer(t)
	for i := 0; i < 3; i++ {
		req := &QueryRequest{Query: []float64{0.02 * float64(i), 0.2}, Relations: names, K: 4}
		body, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		drainStream(t, srv.URL, req)
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	body := scrape(t, srv.URL)
	pairs := []struct {
		family string
		stat   int64
	}{
		{"proxrank_queries_total", st.Queries},
		{"proxrank_queries_streamed_total", st.Streamed},
		{"proxrank_cache_hits_total", st.CacheHits},
		{"proxrank_cache_misses_total", st.CacheMisses},
		{"proxrank_coalesced_total", st.Coalesced},
		{"proxrank_engine_runs_total", st.EngineRuns},
		{"proxrank_streams_brokered_total", st.StreamsBrokered},
		{"proxrank_stream_subscribers", st.StreamSubscribers},
		{"proxrank_stream_peak_lag", st.StreamPeakLag},
	}
	for _, p := range pairs {
		if got := familySum(t, body, p.family); got != float64(p.stat) {
			t.Errorf("%s = %v, /v1/stats says %d", p.family, got, p.stat)
		}
	}
	// Every stream above ran to completion and was drained, so no
	// subscriber may linger.
	if st.StreamSubscribers != 0 {
		t.Errorf("streamSubscribers = %d after all streams drained", st.StreamSubscribers)
	}
	// The blocked-time surfaces share one atomic (micros vs seconds).
	blockedSec := familySum(t, body, "proxrank_stream_blocked_seconds_total")
	if diff := blockedSec*1e6 - float64(st.StreamBlockedMicros); diff > 1 || diff < -1 {
		t.Errorf("blocked seconds %v vs micros %d diverge", blockedSec, st.StreamBlockedMicros)
	}
}

// TestTracedMatchesUntracedBatch asserts the trace flag is a pure
// transport concern on the batch path: the canonical key is unchanged,
// a traced request shares the untraced request's cache entry, and the
// results are byte-identical — the trace rides alongside.
func TestTracedMatchesUntracedBatch(t *testing.T) {
	cat, names := testSetup(t, 2, 60, 2)
	x := NewExecutor(cat, Config{Workers: 2, CacheSize: 8})

	plain := baseRequest(names)
	traced := baseRequest(names)
	traced.Trace = true
	if a, b := plain.Canonical(), traced.Canonical(); a != b {
		t.Fatalf("trace flag changed the canonical key:\n  %s\n  %s", a, b)
	}

	// Fresh traced run: full pull-level detail.
	first, err := x.Execute(context.Background(), traced)
	if err != nil {
		t.Fatal(err)
	}
	if first.Trace == nil {
		t.Fatal("traced run returned no trace")
	}
	if first.Trace.CacheState != api.CacheMiss {
		t.Fatalf("cacheState = %q, want miss", first.Trace.CacheState)
	}
	if len(first.Trace.Pulls) == 0 || len(first.Trace.Phases) == 0 {
		t.Fatalf("miss trace lacks detail: %d pulls, %d phases", len(first.Trace.Pulls), len(first.Trace.Phases))
	}
	for i, p := range first.Trace.Pulls {
		if p.Depth < 1 || p.Relation < 0 || p.Relation >= len(names) {
			t.Fatalf("pull %d out of range: %+v", i, p)
		}
	}

	// Untraced twin: must be the cache hit of the traced run, with no
	// trace attached and byte-identical results.
	second, err := x.Execute(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("untraced twin missed the cache — key diverged")
	}
	if second.Trace != nil {
		t.Fatal("untraced request carries a trace")
	}
	firstJSON, _ := json.Marshal(first.Results)
	secondJSON, _ := json.Marshal(second.Results)
	if !bytes.Equal(firstJSON, secondJSON) {
		t.Fatal("traced and untraced results differ")
	}

	// Traced hit: honest cache state, phases only.
	third, err := x.Execute(context.Background(), traced)
	if err != nil {
		t.Fatal(err)
	}
	if third.Trace == nil || third.Trace.CacheState != api.CacheHit {
		t.Fatalf("traced hit: trace %+v", third.Trace)
	}
	if len(third.Trace.Pulls) != 0 {
		t.Fatal("cache hit reports engine pulls it never made")
	}
}

// TestTracedMatchesUntracedStream asserts the same on the streaming
// path: the traced stream is the untraced stream plus exactly one
// terminal trace event after the summary.
func TestTracedMatchesUntracedStream(t *testing.T) {
	cat, names := testSetup(t, 2, 60, 2)
	// Two executors so both runs are fresh misses through the engine.
	xPlain := NewExecutor(cat, Config{Workers: 2, CacheSize: 8})
	xTraced := NewExecutor(cat, Config{Workers: 2, CacheSize: 8})

	plainEvents, err := collectEvents(t, xPlain, baseRequest(names))
	if err != nil {
		t.Fatal(err)
	}
	req := baseRequest(names)
	req.Trace = true
	tracedEvents, err := collectEvents(t, xTraced, req)
	if err != nil {
		t.Fatal(err)
	}

	if len(tracedEvents) != len(plainEvents)+1 {
		t.Fatalf("traced stream has %d events, want %d (untraced + trace)", len(tracedEvents), len(plainEvents)+1)
	}
	// Wall time is the one legitimately nondeterministic field; zero it
	// on a copy so the comparison pins everything else byte-for-byte.
	scrubbed := func(ev api.ResultEvent) []byte {
		if ev.Summary != nil {
			s := *ev.Summary
			s.Cost.ElapsedMicros = 0
			ev.Summary = &s
		}
		b, _ := json.Marshal(ev)
		return b
	}
	for i, plain := range plainEvents {
		a, b := scrubbed(plain), scrubbed(tracedEvents[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("event %d differs:\n  %s\n  %s", i, a, b)
		}
	}
	last := tracedEvents[len(tracedEvents)-1]
	if last.Type != api.EventTrace || last.Trace == nil {
		t.Fatalf("terminal event is %q, want trace", last.Type)
	}
	if last.Trace.CacheState != api.CacheMiss {
		t.Fatalf("stream trace cacheState = %q, want miss", last.Trace.CacheState)
	}
	if len(last.Trace.Pulls) == 0 {
		t.Fatal("stream leader trace lacks pull detail")
	}
	var sawDrain bool
	for _, ph := range last.Trace.Phases {
		if ph.Name == api.PhaseDrain {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Fatalf("stream trace phases %+v lack a drain span", last.Trace.Phases)
	}
}

// TestSlowQueryLog asserts the threshold-driven log emits one SlowQuery
// JSON line per slow request, carrying the same trace structure.
func TestSlowQueryLog(t *testing.T) {
	cat, names := testSetup(t, 2, 60, 2)
	var buf bytes.Buffer
	x := NewExecutor(cat, Config{
		Workers:            2,
		CacheSize:          8,
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		SlowQueryLog:       &buf,
	})
	if _, err := x.Execute(context.Background(), baseRequest(names)); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d slow-query lines, want 1", len(lines))
	}
	var rec SlowQuery
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("slow-query line is not JSON: %v", err)
	}
	if rec.Mode != "batch" || rec.Outcome != "ok" || rec.K != 3 {
		t.Fatalf("unexpected record: %+v", rec)
	}
	if rec.DurationMicros <= 0 {
		t.Fatalf("durationMicros = %d", rec.DurationMicros)
	}
	if len(rec.Trace.Phases) == 0 {
		t.Fatal("slow-query record lacks phase spans")
	}
	// Not traced by the client, so no pull detail — phases only.
	if len(rec.Trace.Pulls) != 0 {
		t.Fatal("untraced slow query reports pull detail")
	}
}

// TestHTTPStreamTraceEvent asserts the NDJSON transport delivers the
// terminal trace event and that it follows the summary.
func TestHTTPStreamTraceEvent(t *testing.T) {
	srv, names, _ := testServer(t)
	req := &QueryRequest{Query: []float64{0.1, -0.2}, Relations: names, K: 3, Trace: true}
	lines := drainStream(t, srv.URL, req)
	if len(lines) < 2 {
		t.Fatalf("stream too short: %d lines", len(lines))
	}
	var summary, trace api.ResultEvent
	if err := json.Unmarshal([]byte(lines[len(lines)-2]), &summary); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trace); err != nil {
		t.Fatal(err)
	}
	if summary.Type != api.EventSummary {
		t.Fatalf("penultimate event is %q, want summary", summary.Type)
	}
	if trace.Type != api.EventTrace || trace.Trace == nil || len(trace.Trace.Pulls) == 0 {
		t.Fatalf("terminal event is not a populated trace: %+v", trace)
	}
}
