package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"

	proxrank "repro"
	"repro/api"
	"repro/internal/shardrpc"
	"repro/service"
)

// TestAPIDoc is the doctest for docs/API.md: every fenced JSON block
// annotated with a <!-- doctest: ... --> marker is machine-checked, so
// the documented wire shapes cannot drift from the code.
//
// Modes:
//
//	request        the block decodes strictly into api.Request and
//	               passes Normalize
//	response       the block decodes strictly into api.Response
//	events         each NDJSON line decodes strictly into
//	               api.ResultEvent; a sequence ending in a summary must
//	               CollectStream cleanly
//	error          the block is a structured error body with code and
//	               message
//	csv            the block parses as a relation CSV body
//	live-request   the block is POSTed to /v1/query on the fixture
//	               server; the next live-response block must equal the
//	               actual response (volatile cost timings zeroed)
//	live-response  see live-request
//	live-stream    the block is POSTed to /v1/query/stream on the
//	               fixture server; the next live-events block must equal
//	               the actual NDJSON lines (volatile cost timings zeroed)
//	live-events    see live-stream
//	rpc-request    the block decodes strictly into shardrpc.Request
//	rpc-response   the block decodes strictly into shardrpc.Response
//	rpc-live-request   the block is sent as a frame to the fixture shard
//	                   server; the next rpc-live-response block must
//	                   equal the actual response frame's JSON
//	rpc-live-response  see rpc-live-request
func TestAPIDoc(t *testing.T) {
	blocks := parseDocBlocks(t, "../docs/API.md")
	if len(blocks) == 0 {
		t.Fatal("docs/API.md has no doctest-annotated blocks")
	}
	srv := docFixtureServer(t)
	rpcPeer := docShardServer(t)
	counts := map[string]int{}
	var pendingLive *docBlock
	for i := range blocks {
		b := blocks[i]
		counts[b.mode]++
		switch b.mode {
		case "request":
			var req api.Request
			strictDecode(t, b, &req)
			if err := req.Normalize(api.Limits{}); err != nil {
				t.Errorf("docs/API.md:%d: documented request fails validation: %v", b.line, err)
			}
		case "response":
			var resp api.Response
			strictDecode(t, b, &resp)
		case "events":
			checkEvents(t, b, b.text)
		case "error":
			var e struct {
				Error *api.Error `json:"error"`
			}
			strictDecode(t, b, &e)
			if e.Error == nil || e.Error.Code == "" || e.Error.Message == "" {
				t.Errorf("docs/API.md:%d: error example missing code or message", b.line)
			}
		case "csv":
			if _, err := proxrank.ReadRelationCSV(strings.NewReader(b.text), "doc", 0); err != nil {
				t.Errorf("docs/API.md:%d: documented CSV does not parse: %v", b.line, err)
			}
		case "slowquery":
			var rec service.SlowQuery
			strictDecode(t, b, &rec)
			if rec.Mode == "" || rec.Outcome == "" || len(rec.Trace.Phases) == 0 {
				t.Errorf("docs/API.md:%d: slow-query example missing mode, outcome, or phases", b.line)
			}
		case "live-request", "live-stream":
			pendingLive = &blocks[i]
		case "live-response":
			requireLive(t, b, pendingLive, "live-request")
			checkLiveBatch(t, srv, pendingLive, b)
			pendingLive = nil
		case "live-events":
			requireLive(t, b, pendingLive, "live-stream")
			checkLiveStream(t, srv, pendingLive, b)
			pendingLive = nil
		case "rpc-request":
			var req shardrpc.Request
			strictDecode(t, b, &req)
			if req.Verb == "" {
				t.Errorf("docs/API.md:%d: rpc request example has no verb", b.line)
			}
		case "rpc-response":
			var resp shardrpc.Response
			strictDecode(t, b, &resp)
		case "rpc-live-request":
			pendingLive = &blocks[i]
		case "rpc-live-response":
			requireLive(t, b, pendingLive, "rpc-live-request")
			checkLiveRPC(t, rpcPeer, pendingLive, b)
			pendingLive = nil
		default:
			t.Errorf("docs/API.md:%d: unknown doctest mode %q", b.line, b.mode)
		}
	}
	if pendingLive != nil {
		t.Errorf("docs/API.md:%d: %s block without its answer block", pendingLive.line, pendingLive.mode)
	}
	// The reference must keep covering the core shapes.
	for _, mode := range []string{"request", "events", "error", "live-response", "live-events", "rpc-request", "rpc-live-response"} {
		if counts[mode] == 0 {
			t.Errorf("docs/API.md documents no %s example", mode)
		}
	}
}

type docBlock struct {
	mode string
	line int // 1-based line of the opening fence
	text string
}

// parseDocBlocks extracts fenced code blocks annotated with
// <!-- doctest: mode -->. The annotation applies to the next fenced
// block.
func parseDocBlocks(t *testing.T, path string) []docBlock {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	lines := strings.Split(string(raw), "\n")
	var blocks []docBlock
	mode := ""
	in := false
	start := 0
	var buf []string
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if !in {
			if rest, ok := strings.CutPrefix(trimmed, "<!-- doctest:"); ok {
				mode = strings.TrimSpace(strings.TrimSuffix(rest, "-->"))
				continue
			}
			if strings.HasPrefix(trimmed, "```") {
				in = true
				start = i + 1
				buf = nil
			}
			continue
		}
		if strings.HasPrefix(trimmed, "```") {
			in = false
			if mode != "" {
				blocks = append(blocks, docBlock{mode: mode, line: start, text: strings.Join(buf, "\n")})
				mode = ""
			}
			continue
		}
		buf = append(buf, line)
	}
	return blocks
}

func strictDecode(t *testing.T, b docBlock, v any) {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(b.text))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		t.Errorf("docs/API.md:%d: block does not decode into %T: %v", b.line, v, err)
	}
}

func checkEvents(t *testing.T, b docBlock, ndjson string) {
	t.Helper()
	var events []api.ResultEvent
	sawTerminal := false
	for off, line := range strings.Split(strings.TrimSpace(ndjson), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var ev api.ResultEvent
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			t.Errorf("docs/API.md:%d: event line %d invalid: %v", b.line, off+1, err)
			return
		}
		events = append(events, ev)
		if ev.Type == api.EventSummary || ev.Type == api.EventError {
			sawTerminal = true
		}
	}
	if sawTerminal {
		if _, err := api.CollectStream(events); err != nil && events[len(events)-1].Type != api.EventError {
			t.Errorf("docs/API.md:%d: event sequence does not collect: %v", b.line, err)
		}
	}
}

func requireLive(t *testing.T, b docBlock, pending *docBlock, want string) {
	t.Helper()
	if pending == nil || pending.mode != want {
		t.Fatalf("docs/API.md:%d: %s block is not preceded by a %s block", b.line, b.mode, want)
	}
}

// docFixtureServer serves the dataset every live example in docs/API.md
// is written against: hotels{h1,h2} and restaurants{r1,r2} with the
// documented scores and positions.
func docFixtureServer(t *testing.T) *httptest.Server {
	t.Helper()
	hotels, err := proxrank.NewRelation("hotels", 1.0, []proxrank.Tuple{
		{ID: "h1", Score: 0.9, Vec: proxrank.Vector{0.1, 0}},
		{ID: "h2", Score: 0.2, Vec: proxrank.Vector{5, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	food, err := proxrank.NewRelation("restaurants", 1.0, []proxrank.Tuple{
		{ID: "r1", Score: 0.8, Vec: proxrank.Vector{0, 0.2}},
		{ID: "r2", Score: 0.3, Vec: proxrank.Vector{-4, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cat := service.NewCatalog()
	if err := cat.Register("hotels", hotels); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("restaurants", food); err != nil {
		t.Fatal(err)
	}
	exec := service.NewExecutor(cat, service.Config{Workers: 2, CacheSize: -1})
	srv := httptest.NewServer(service.NewServer(cat, exec).Handler())
	t.Cleanup(srv.Close)
	return srv
}

// docShardServer serves the same fixture data set over the shardrpc
// wire protocol, each relation as a single owned shard, under the fixed
// server name the documentation shows. Every rpc-live example runs
// against it.
func docShardServer(t *testing.T) *shardrpc.Peer {
	t.Helper()
	hotels, err := proxrank.NewRelation("hotels", 1.0, []proxrank.Tuple{
		{ID: "h1", Score: 0.9, Vec: proxrank.Vector{0.1, 0}},
		{ID: "h2", Score: 0.2, Vec: proxrank.Vector{5, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	food, err := proxrank.NewRelation("restaurants", 1.0, []proxrank.Tuple{
		{ID: "r1", Score: 0.8, Vec: proxrank.Vector{0, 0.2}},
		{ID: "r2", Score: 0.3, Vec: proxrank.Vector{-4, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cat := service.NewCatalog()
	if err := cat.Register("hotels", hotels); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("restaurants", food); err != nil {
		t.Fatal(err)
	}
	exec := service.NewExecutor(cat, service.Config{Workers: 2, CacheSize: -1})
	backend := service.NewShardBackend(cat, exec, service.Ownership{})
	backend.SetName("shard-a.internal:8081")
	rpcSrv := shardrpc.NewServer(backend)
	addr, err := rpcSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rpcSrv.Close)
	peer := shardrpc.NewPeer(addr.String())
	t.Cleanup(peer.Close)
	return peer
}

// checkLiveRPC sends the documented request frame to the fixture shard
// server and compares the actual response frame's JSON with the
// documented one.
func checkLiveRPC(t *testing.T, peer *shardrpc.Peer, reqB *docBlock, respB docBlock) {
	t.Helper()
	var req shardrpc.Request
	dec := json.NewDecoder(strings.NewReader(reqB.text))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		t.Errorf("docs/API.md:%d: rpc request does not decode: %v", reqB.line, err)
		return
	}
	resp, err := peer.Call(context.Background(), &req)
	if err != nil {
		t.Errorf("docs/API.md:%d: documented rpc request failed: %v", reqB.line, err)
		return
	}
	live, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	want := normalizeDoc(t, respB.line, []byte(respB.text))
	have := normalizeDoc(t, respB.line, live)
	if !reflect.DeepEqual(want, have) {
		gotJSON, _ := json.MarshalIndent(have, "", "  ")
		t.Errorf("docs/API.md:%d: documented rpc response differs from the live shard server.\nlive:\n%s", respB.line, gotJSON)
	}
}

// normalizeDoc parses one JSON value and zeroes the volatile cost fields
// (wall-clock timings) so documented and live outputs compare equal.
func normalizeDoc(t *testing.T, line int, data []byte) any {
	t.Helper()
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("docs/API.md:%d: %v (in %s)", line, err, data)
	}
	scrub(v)
	return v
}

// scrub zeroes every wall-clock field — any key ending in "Micros"
// (elapsedMicros, durationMicros, the trace's per-phase and per-pull
// timings) — anywhere in the value.
func scrub(v any) {
	switch m := v.(type) {
	case map[string]any:
		for k, val := range m {
			if strings.HasSuffix(k, "Micros") {
				m[k] = float64(0)
				continue
			}
			scrub(val)
		}
	case []any:
		for _, val := range m {
			scrub(val)
		}
	}
}

func checkLiveBatch(t *testing.T, srv *httptest.Server, reqB *docBlock, respB docBlock) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader(reqB.text))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("docs/API.md:%d: documented request answered %d: %s", reqB.line, resp.StatusCode, got.Bytes())
		return
	}
	want := normalizeDoc(t, respB.line, []byte(respB.text))
	have := normalizeDoc(t, respB.line, got.Bytes())
	if !reflect.DeepEqual(want, have) {
		gotJSON, _ := json.MarshalIndent(have, "", "  ")
		t.Errorf("docs/API.md:%d: documented response differs from the live server.\nlive (timings zeroed):\n%s", respB.line, gotJSON)
	}
}

func checkLiveStream(t *testing.T, srv *httptest.Server, reqB *docBlock, evB docBlock) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/query/stream", "application/json", strings.NewReader(reqB.text))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("docs/API.md:%d: documented stream request answered %d: %s", reqB.line, resp.StatusCode, got.Bytes())
		return
	}
	wantLines := strings.Split(strings.TrimSpace(evB.text), "\n")
	haveLines := strings.Split(strings.TrimSpace(got.String()), "\n")
	if len(wantLines) != len(haveLines) {
		t.Errorf("docs/API.md:%d: documented stream has %d lines, live server sent %d:\n%s",
			evB.line, len(wantLines), len(haveLines), got.String())
		return
	}
	for i := range wantLines {
		want := normalizeDoc(t, evB.line, []byte(wantLines[i]))
		have := normalizeDoc(t, evB.line, []byte(haveLines[i]))
		if !reflect.DeepEqual(want, have) {
			gotJSON, _ := json.Marshal(have)
			t.Errorf("docs/API.md:%d: stream line %d differs from the live server.\nlive (timings zeroed): %s",
				evB.line, i+1, gotJSON)
		}
	}
}
