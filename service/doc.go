// Package service turns the proximity rank join library into a
// multi-tenant query-serving subsystem. The library answers one query at
// a time; this package is the layer that answers many at once.
//
// Its pieces, bottom to top:
//
//   - Catalog: named relations with R-tree and score indexes precomputed
//     at registration and shared read-only across queries. Relations may
//     be sharded (per-shard indexes built in parallel; per-query streams
//     k-way-merged back into the canonical order, so sharding never
//     changes answers). Re-registering a name bumps its generation,
//     which invalidates every cached answer built on the old data.
//
//   - Executor: validation and defaulting through the api package, a
//     bounded worker pool with per-query deadlines, an LRU result cache
//     keyed by the canonical request encoding plus catalog generations,
//     and a single-flight group so identical concurrent misses run the
//     engine once. Batch (Execute) and streaming (ExecuteStream)
//     consumption share all of it, so a query coalesces across
//     consumption models.
//
//   - Stream delivery broker: a streamed query's engine runs to
//     completion at engine speed, publishing events into a bounded
//     per-query topic (internal/broker) and releasing its worker slot
//     when enumeration finishes; the leader's sink and coalesced
//     followers drain the topic each at their own pace, and a follower
//     arriving mid-run replays the certified prefix before tailing live
//     events. A consumer that falls a full buffer behind is handled by
//     the configured overflow policy (block briefly then drop, or drop
//     immediately). Config.StreamBuffer < 0 disables the broker,
//     restoring sink-paced delivery.
//
//   - Server: the HTTP JSON front end — batch and NDJSON streaming query
//     endpoints, runtime relation management, health and stats. See the
//     Server type for the route table and docs/API.md for the full wire
//     reference.
//
// ARCHITECTURE.md at the repository root walks a request through these
// layers end to end.
package service
