package service

import (
	"context"
	"runtime"
	"testing"
	"time"

	proxrank "repro"
)

// testSetup registers n relations and returns the catalog plus their
// names.
func testSetup(t testing.TB, n, size, dim int) (*Catalog, []string) {
	t.Helper()
	c := NewCatalog()
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
		if err := c.Register(names[i], testRelation(t, names[i], int64(100+i), size, dim)); err != nil {
			t.Fatal(err)
		}
	}
	return c, names
}

func baseRequest(names []string) *QueryRequest {
	return &QueryRequest{
		Query:     []float64{0.1, -0.2},
		Relations: names,
		K:         3,
	}
}

// TestExecutorCacheSkipsEngine: a repeated identical query must be a
// cache hit that never reaches the engine, observable in the counters.
func TestExecutorCacheSkipsEngine(t *testing.T) {
	cat, names := testSetup(t, 2, 40, 2)
	x := NewExecutor(cat, Config{Workers: 2, CacheSize: 8})

	first, err := x.Execute(context.Background(), baseRequest(names))
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first execution claims to be cached")
	}
	if len(first.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(first.Results))
	}

	second, err := x.Execute(context.Background(), baseRequest(names))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat execution was not served from cache")
	}
	if second.Cost.SumDepths != first.Cost.SumDepths {
		t.Fatalf("cached cost diverged: %d vs %d", second.Cost.SumDepths, first.Cost.SumDepths)
	}

	st := x.Stats()
	if st.EngineRuns != 1 {
		t.Fatalf("EngineRuns = %d, want 1 (cache must skip the engine)", st.EngineRuns)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("CacheHits/Misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	// The hit path must stamp Cached on a copy: `first` is the very
	// pointer stored in the cache, so it must still read Cached=false.
	if first.Cached {
		t.Fatal("cache hit mutated the shared cached response")
	}
}

// TestExecutorNoCacheBypass: NoCache requests neither read nor populate
// the cache.
func TestExecutorNoCacheBypass(t *testing.T) {
	cat, names := testSetup(t, 2, 30, 2)
	x := NewExecutor(cat, Config{Workers: 2, CacheSize: 8})
	req := baseRequest(names)
	req.NoCache = true
	for i := 0; i < 2; i++ {
		resp, err := x.Execute(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cached {
			t.Fatalf("run %d: NoCache request served from cache", i)
		}
	}
	st := x.Stats()
	if st.EngineRuns != 2 || st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEntries != 0 {
		t.Fatalf("stats after NoCache runs: %+v", st)
	}
}

// TestExecutorGenerationInvalidation: evicting and re-registering a
// relation under the same name must invalidate cached answers for it.
func TestExecutorGenerationInvalidation(t *testing.T) {
	cat, names := testSetup(t, 2, 30, 2)
	x := NewExecutor(cat, Config{Workers: 2, CacheSize: 8})
	if _, err := x.Execute(context.Background(), baseRequest(names)); err != nil {
		t.Fatal(err)
	}
	cat.Evict(names[0])
	// Different data under the same name.
	if err := cat.Register(names[0], testRelation(t, names[0], 999, 25, 2)); err != nil {
		t.Fatal(err)
	}
	resp, err := x.Execute(context.Background(), baseRequest(names))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("query against re-registered relation was served from the stale cache")
	}
	if x.Stats().EngineRuns != 2 {
		t.Fatalf("EngineRuns = %d, want 2", x.Stats().EngineRuns)
	}
}

// TestExecutorExpiredContext: a query arriving with an already-expired
// context must return promptly with a cancellation error, leak no
// goroutines, and never count as completed.
func TestExecutorExpiredContext(t *testing.T) {
	cat, names := testSetup(t, 3, 400, 2)
	x := NewExecutor(cat, Config{Workers: 2, CacheSize: -1})

	before := runtime.NumGoroutine()
	for i := 0; i < 16; i++ {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		req := baseRequest(names)
		req.Query = []float64{float64(i), 0.5} // defeat any caching
		start := time.Now()
		_, err := x.Execute(ctx, req)
		elapsed := time.Since(start)
		cancel()
		if code := codeOf(err); code != CodeTimeout && code != CodeCanceled {
			t.Fatalf("iteration %d: err %v (code %q), want timeout/canceled", i, err, code)
		}
		if elapsed > 2*time.Second {
			t.Fatalf("iteration %d: expired context took %v to return", i, elapsed)
		}
	}
	st := x.Stats()
	if st.Completed != 0 {
		t.Fatalf("Completed = %d, want 0", st.Completed)
	}
	if st.Canceled+st.Rejected != 16 {
		t.Fatalf("Canceled+Rejected = %d, want 16", st.Canceled+st.Rejected)
	}

	// The executor runs queries on the caller's goroutine; nothing may
	// linger. Allow the runtime a moment to settle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after canceled queries", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// slowSource delays every access so that a run is long enough for a
// short deadline to land mid-flight, whatever the hardware or the
// engine's hot path do.
type slowSource struct {
	proxrank.Source
	delay time.Duration
}

func (s slowSource) Next() (proxrank.Tuple, error) {
	time.Sleep(s.delay)
	return s.Source.Next()
}

// TestExecutorMidRunTimeout: a deadline that expires during engine
// execution aborts the run with a timeout error instead of running to
// completion.
func TestExecutorMidRunTimeout(t *testing.T) {
	cat, names := testSetup(t, 3, 500, 3)
	x := NewExecutor(cat, Config{Workers: 1, CacheSize: -1})
	x.wrapSource = func(s proxrank.Source) proxrank.Source {
		return slowSource{Source: s, delay: 200 * time.Microsecond}
	}
	req := &QueryRequest{
		Query:     []float64{0, 0, 0},
		Relations: names,
		K:         100,
		Algorithm: "cbrr", // deepest-reading algorithm: plenty of pulls to interrupt
	}
	// Measure the uncanceled cost once, then re-run with a deadline that
	// lands mid-flight. If the hardware answers even the full run faster
	// than the timer can fire, skip: the behavior is untestable here.
	full, err := x.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if full.Cost.ElapsedMicros < 2000 {
		t.Skipf("full run took only %dµs; too fast to interrupt reliably", full.Cost.ElapsedMicros)
	}
	req.TimeoutMillis = 1
	req.Query = []float64{0.001, 0, 0} // different cacheable identity
	start := time.Now()
	_, err = x.Execute(context.Background(), req)
	if codeOf(err) != CodeTimeout {
		t.Fatalf("err = %v, want timeout", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("timed-out query returned after %v", el)
	}
	if st := x.Stats(); st.Canceled == 0 {
		t.Fatalf("Canceled = 0 after a mid-run timeout; stats %+v", st)
	}
}

// TestExecutorTimeoutOverflowClamp: a TimeoutMillis large enough to
// overflow the Duration multiply must clamp to MaxTimeout instead of
// producing an already-expired deadline.
func TestExecutorTimeoutOverflowClamp(t *testing.T) {
	cat, names := testSetup(t, 2, 20, 2)
	x := NewExecutor(cat, Config{Workers: 1})
	req := baseRequest(names)
	req.TimeoutMillis = 1<<63 - 1
	resp, err := x.Execute(context.Background(), req)
	if err != nil {
		t.Fatalf("overflowing timeout expired the query: %v", err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
}

// TestExecutorValidation exercises the request validation table.
func TestExecutorValidation(t *testing.T) {
	cat, names := testSetup(t, 2, 10, 2)
	x := NewExecutor(cat, Config{Workers: 1})
	cases := []struct {
		name string
		mut  func(*QueryRequest)
		code ErrorCode
	}{
		{"no query", func(r *QueryRequest) { r.Query = nil }, CodeBadRequest},
		{"NaN query", func(r *QueryRequest) { r.Query = []float64{0.1, nan()} }, CodeBadRequest},
		{"one relation", func(r *QueryRequest) { r.Relations = names[:1] }, CodeBadRequest},
		{"unknown relation", func(r *QueryRequest) { r.Relations = []string{names[0], "ghost"} }, CodeNotFound},
		{"k zero", func(r *QueryRequest) { r.K = 0 }, CodeBadRequest},
		{"k over limit", func(r *QueryRequest) { r.K = DefaultMaxK + 1 }, CodeBadRequest},
		{"bad algorithm", func(r *QueryRequest) { r.Algorithm = "quantum" }, CodeBadRequest},
		{"bad access", func(r *QueryRequest) { r.Access = "random" }, CodeBadRequest},
		{"bad transform", func(r *QueryRequest) { r.Transform = "sqrt" }, CodeBadRequest},
		{"negative weight", func(r *QueryRequest) { r.Weights = &WeightsSpec{Ws: -1, Wq: 1, Wmu: 1} }, CodeBadRequest},
		{"infinite weight", func(r *QueryRequest) { r.Weights = &WeightsSpec{Ws: inf(), Wq: 1, Wmu: 1} }, CodeBadRequest},
		{"all-zero weights", func(r *QueryRequest) { r.Weights = &WeightsSpec{} }, CodeBadRequest},
		{"negative epsilon", func(r *QueryRequest) { r.Epsilon = -0.5 }, CodeBadRequest},
		{"infinite epsilon", func(r *QueryRequest) { r.Epsilon = inf() }, CodeBadRequest},
		{"negative timeout", func(r *QueryRequest) { r.TimeoutMillis = -5 }, CodeBadRequest},
		{"negative maxSumDepths", func(r *QueryRequest) { r.MaxSumDepths = -100 }, CodeBadRequest},
		{"negative maxCombinations", func(r *QueryRequest) { r.MaxCombinations = -1 }, CodeBadRequest},
		{"negative boundPeriod", func(r *QueryRequest) { r.BoundPeriod = -2 }, CodeBadRequest},
		{"negative dominancePeriod", func(r *QueryRequest) { r.DominancePeriod = -2 }, CodeBadRequest},
		{"dim mismatch", func(r *QueryRequest) { r.Query = []float64{1, 2, 3} }, CodeBadRequest},
	}
	for _, tc := range cases {
		req := baseRequest(names)
		tc.mut(req)
		_, err := x.Execute(context.Background(), req)
		if codeOf(err) != tc.code {
			t.Errorf("%s: err %v, want code %s", tc.name, err, tc.code)
		}
	}
}

// TestExecutorScoreAccess serves a score-access query from the
// precomputed score order.
func TestExecutorScoreAccess(t *testing.T) {
	cat, names := testSetup(t, 2, 30, 2)
	x := NewExecutor(cat, Config{Workers: 1})
	req := baseRequest(names)
	req.Access = "score"
	resp, err := x.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Cost.SumDepths <= 0 {
		t.Fatalf("cost missing: %+v", resp.Cost)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func inf() float64 {
	var zero float64
	return 1 / zero
}

// TestCacheKeyNoCollision: relation names are caller-chosen and may
// contain the key's own delimiters, so without length-prefixing in the
// canonical encoding the lists [a, "1,b"] and ["a,1", b] would render
// the same segment and could serve each other's cached answers.
func TestCacheKeyNoCollision(t *testing.T) {
	entry := func(name string, gen uint64) *Entry {
		sharded, err := proxrank.NewShardedRelation(testRelation(t, name, int64(gen), 5, 2), 1, proxrank.HashPartition)
		if err != nil {
			t.Fatal(err)
		}
		return &Entry{sharded: sharded, gen: gen}
	}
	list1 := []*Entry{entry("a", 1), entry("1,b", 2)}
	list2 := []*Entry{entry("a,1", 1), entry("b", 2)}
	req1 := &QueryRequest{Query: []float64{0, 0}, Relations: []string{"a", "1,b"}, K: 1}
	req2 := &QueryRequest{Query: []float64{0, 0}, Relations: []string{"a,1", "b"}, K: 1}
	k1 := cacheKey(req1, list1)
	k2 := cacheKey(req2, list2)
	if k1 == k2 {
		t.Fatalf("distinct relation lists collided in the cache key: %q", k1)
	}
}
