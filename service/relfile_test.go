package service

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	proxrank "repro"
	"repro/api"
)

// writeRelFile partitions rel and writes it to a temp .prox file.
func writeRelFile(t testing.TB, rel *proxrank.Relation, shards int) string {
	t.Helper()
	s, err := proxrank.NewShardedRelation(rel, shards, proxrank.GridPartition)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), rel.Name+proxrank.RelFileExtension)
	if err := proxrank.SaveRelFile(path, s); err != nil {
		t.Fatal(err)
	}
	return path
}

// resultsKey renders just the answer part of a response — scores survive
// as shortest-round-trip floats, so bit differences show.
func resultsKey(t *testing.T, resp *QueryResponse) string {
	t.Helper()
	buf, err := json.Marshal(resp.Results)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestCatalogLoadRelFile: a relation admitted from a relfile mapping
// answers queries byte-identically to the same relation registered from
// RAM, reports itself file-backed, and bumps the open counter.
func TestCatalogLoadRelFile(t *testing.T) {
	relA := testRelation(t, "A", 21, 60, 2)
	relB := testRelation(t, "B", 22, 50, 2)
	pathA := writeRelFile(t, relA, 2)

	ramCat := NewCatalog()
	if err := ramCat.RegisterSharded("A", relA, 2, proxrank.GridPartition); err != nil {
		t.Fatal(err)
	}
	if err := ramCat.Register("B", relB); err != nil {
		t.Fatal(err)
	}
	fileCat := NewCatalog()
	if err := fileCat.LoadRelFile("A", pathA); err != nil {
		t.Fatal(err)
	}
	if err := fileCat.Register("B", relB); err != nil {
		t.Fatal(err)
	}
	if got := fileCat.RelFileOpens(); got != 1 {
		t.Fatalf("RelFileOpens = %d, want 1", got)
	}
	info, err := fileCat.Info("A")
	if err != nil {
		t.Fatal(err)
	}
	if !info.FileBacked || info.Tuples != relA.Len() || info.Shards != 2 {
		t.Fatalf("relfile entry info = %+v", info)
	}
	if info, err := fileCat.Info("B"); err != nil || info.FileBacked {
		t.Fatalf("RAM entry claims file backing: %+v (%v)", info, err)
	}

	ram := NewExecutor(ramCat, Config{Workers: 2, CacheSize: -1})
	file := NewExecutor(fileCat, Config{Workers: 2, CacheSize: -1})
	for _, req := range []*QueryRequest{
		{Query: []float64{0.1, -0.2}, Relations: []string{"A", "B"}, K: 4},
		{Query: []float64{-0.6, 0.4}, Relations: []string{"A", "B"}, K: 7, Access: "score"},
	} {
		want, err := ram.Execute(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := file.Execute(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if w, g := resultsKey(t, want), resultsKey(t, got); w != g {
			t.Fatalf("relfile-backed answer diverged\nram:  %s\nfile: %s", w, g)
		}
	}

	// Error paths: a missing file is a bad request, a taken name a conflict.
	if err := fileCat.LoadRelFile("C", filepath.Join(t.TempDir(), "nope.prox")); codeOf(err) != CodeBadRequest {
		t.Fatalf("missing file: %v", err)
	}
	if err := fileCat.LoadRelFile("A", pathA); codeOf(err) != CodeConflict {
		t.Fatalf("duplicate load: %v", err)
	}
}

// TestExecutorWireSpill: a wire request selecting bufferPolicy "spill"
// against a server configured with a spill directory runs its session
// through the file spill tier — byte-identical answers, with the spill
// volume visible on the response cost, the executor totals, and the
// /metrics counter wiring.
func TestExecutorWireSpill(t *testing.T) {
	relA := testRelation(t, "A", 51, 500, 2)
	relB := testRelation(t, "B", 52, 500, 2)
	cat := NewCatalog()
	if err := cat.Register("A", relA); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("B", relB); err != nil {
		t.Fatal(err)
	}
	plain := NewExecutor(cat, Config{Workers: 2, CacheSize: -1})
	spilly := NewExecutor(cat, Config{
		Workers:   2,
		CacheSize: -1,
		SpillDir:  t.TempDir(),
		// A tiny watermark so even this small run crosses into the file
		// tier instead of staying in the in-memory slab.
		SpillMemBytes: 64,
	})

	// A center query over everything forms far more combinations than
	// K=3 keeps buffered, so the spill path has real overflow to carry.
	mk := func(policy string) *QueryRequest {
		return &QueryRequest{Query: []float64{0, 0}, Relations: []string{"A", "B"}, K: 3, BufferPolicy: policy}
	}
	want, err := plain.Execute(context.Background(), mk(""))
	if err != nil {
		t.Fatal(err)
	}
	got, err := spilly.Execute(context.Background(), mk("spill"))
	if err != nil {
		t.Fatal(err)
	}
	if w, g := resultsKey(t, want), resultsKey(t, got); w != g {
		t.Fatalf("spill-backed answer diverged\nprune: %s\nspill: %s", w, g)
	}
	if got.Cost.SpilledCombinations == 0 || got.Cost.SpilledBytes == 0 {
		t.Fatalf("spill session reported no spill: %+v", got.Cost)
	}
	if want.Cost.SpilledCombinations != 0 || want.Cost.SpilledBytes != 0 {
		t.Fatalf("prune session reported spill: %+v", want.Cost)
	}
	snap := spilly.Stats()
	if snap.TotalSpilledCombinations != got.Cost.SpilledCombinations ||
		snap.TotalSpilledBytes != got.Cost.SpilledBytes {
		t.Fatalf("executor totals %d/%d do not match the response cost %d/%d",
			snap.TotalSpilledCombinations, snap.TotalSpilledBytes,
			got.Cost.SpilledCombinations, got.Cost.SpilledBytes)
	}

	// The policy is engine tuning, not identity: both requests share one
	// canonical encoding, so one cache entry serves both.
	r1, r2 := mk(""), mk("spill")
	if err := r1.Normalize(api.Limits{}); err != nil {
		t.Fatal(err)
	}
	if err := r2.Normalize(api.Limits{}); err != nil {
		t.Fatal(err)
	}
	if r1.Canonical() != r2.Canonical() {
		t.Fatal("bufferPolicy leaked into the canonical encoding")
	}
}

// TestCatalogAutoShardAdmission: shards == 0 lets admission pick the
// count from the relation's size, and Replace re-derives it — a relation
// that grew past the per-shard target is re-sharded on re-registration.
func TestCatalogAutoShardAdmission(t *testing.T) {
	cat := NewCatalog()
	small := testRelation(t, "r", 31, 50, 2)
	if err := cat.RegisterSharded("r", small, 0, proxrank.HashPartition); err != nil {
		t.Fatal(err)
	}
	e1, err := cat.Get("r")
	if err != nil {
		t.Fatal(err)
	}
	if e1.Shards() != 1 {
		t.Fatalf("small relation auto-sharded to %d, want 1", e1.Shards())
	}

	grown := testRelation(t, "r", 32, 9000, 2)
	if err := cat.Replace("r", grown, 0, proxrank.HashPartition); err != nil {
		t.Fatal(err)
	}
	e2, err := cat.Get("r")
	if err != nil {
		t.Fatal(err)
	}
	if want := proxrank.AutoShardCount(9000); e2.Shards() != want || want < 2 {
		t.Fatalf("grown relation re-sharded to %d, want %d (>1)", e2.Shards(), want)
	}
	if e2.Generation() <= e1.Generation() {
		t.Fatalf("Replace did not advance the generation: %d then %d", e1.Generation(), e2.Generation())
	}
	// The old entry still answers: in-flight queries hold it by pointer.
	if e1.Sharded().Relation().Len() != 50 {
		t.Fatal("replaced entry lost its relation")
	}
}

// TestCatalogRelFileConcurrentEvict hammers evict + re-load of an
// mmap-backed relation while queries run against it from several
// goroutines (run under -race in CI). Queries that resolved the old
// generation finish on it — the mapping outlives eviction, so answers
// are identical across generations of the same file and nothing tears.
func TestCatalogRelFileConcurrentEvict(t *testing.T) {
	relA := testRelation(t, "A", 41, 400, 2)
	relB := testRelation(t, "B", 42, 300, 2)
	pathA := writeRelFile(t, relA, 3)

	cat := NewCatalog()
	if err := cat.LoadRelFile("A", pathA); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("B", relB); err != nil {
		t.Fatal(err)
	}
	x := NewExecutor(cat, Config{Workers: 4, CacheSize: -1})
	req := &QueryRequest{Query: []float64{0.2, 0.1}, Relations: []string{"A", "B"}, K: 5}
	golden, err := x.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want := resultsKey(t, golden)

	var stop atomic.Bool
	var succeeded atomic.Int64
	errc := make(chan error, 16)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := x.Execute(context.Background(), req)
				if err != nil {
					// The instant between Evict and re-load legally 404s;
					// anything else is a real failure.
					if codeOf(err) != CodeNotFound {
						select {
						case errc <- err:
						default:
						}
					}
					continue
				}
				if got := resultsKey(t, resp); got != want {
					select {
					case errc <- errors.New("answer diverged across generations:\n" + got + "\nwant:\n" + want):
					default:
					}
				}
				succeeded.Add(1)
			}
		}()
	}
	// Churn until the queriers have demonstrably completed work across
	// several generations (bounded so a hang still fails fast).
	churns := 0
	for deadline := 0; (succeeded.Load() < 50 || churns < 25) && deadline < 10_000; deadline++ {
		cat.Evict("A")
		if err := cat.LoadRelFile("A", pathA); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatal(err)
		}
		churns++
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if succeeded.Load() == 0 {
		t.Fatal("no query completed during the churn")
	}
	if opens := cat.RelFileOpens(); opens != int64(churns)+1 {
		t.Fatalf("RelFileOpens = %d, want %d", opens, churns+1)
	}
}
