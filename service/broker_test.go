package service

import (
	"context"
	"reflect"
	"testing"
	"time"

	proxrank "repro"
	"repro/api"
)

// stallSink is an EventSink that parks on its first event until released
// — the deliberately slow client of the ROADMAP's decoupling item.
type stallSink struct {
	entered chan struct{} // closed when the first event arrives
	release chan struct{} // close to let the sink return
	events  []api.ResultEvent
	once    bool
}

func newStallSink() *stallSink {
	return &stallSink{entered: make(chan struct{}), release: make(chan struct{})}
}

func (s *stallSink) sink(ev api.ResultEvent) error {
	if !s.once {
		s.once = true
		close(s.entered)
		<-s.release
	}
	s.events = append(s.events, ev)
	return nil
}

// waitStat polls a stats field until it reaches want or the deadline
// passes.
func waitStat(t *testing.T, read func() int64, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if read() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s never reached %d (now %d)", what, want, read())
}

// TestStalledSubscriberDoesNotBlockEngine is the PR's regression test: a
// deliberately stalled stream sink must not delay a concurrently
// coalesced batch Execute or a second stream follower — the engine runs
// to completion at engine speed, both followers observe the full result
// set while the slow client is still parked on its first event, and the
// results are byte-identical to the batch path.
func TestStalledSubscriberDoesNotBlockEngine(t *testing.T) {
	cat, names := testSetup(t, 2, 24, 2)
	x := NewExecutor(cat, Config{
		Workers:      1, // one slot: decoupling must free it for everyone else
		CacheSize:    16,
		StreamBuffer: 4,
		// Block policy: the engine waits briefly for live consumers (the
		// honest followers) but a stalled one is dropped after at most
		// StreamBlockTimeout — the "buffer bound" of the regression.
		StreamOverflow:     api.OverflowBlock,
		StreamBlockTimeout: 100 * time.Millisecond,
	})
	g := newGate()
	x.wrapSource = func(s proxrank.Source) proxrank.Source { return gatedSource{Source: s, g: g} }

	req := baseRequest(names)
	req.K = 8

	stalled := newStallSink()
	leaderDone := make(chan error, 1)
	leaderExited := make(chan struct{})
	go func() {
		leaderDone <- x.ExecuteStream(context.Background(), req, stalled.sink)
		close(leaderExited)
	}()
	<-g.started // the leader owns the flight key and the engine is mid-run

	// Second stream follower: attaches to the live topic mid-run.
	followerDone := make(chan error, 1)
	var followerEvents []api.ResultEvent
	go func() {
		followerDone <- x.ExecuteStream(context.Background(), baseRequest2(names, req.K), func(ev api.ResultEvent) error {
			followerEvents = append(followerEvents, ev)
			return nil
		})
	}()
	waitStat(t, func() int64 { return x.Stats().MidRunAttaches }, 1, "midRunAttaches")

	// Coalesced batch query of the same key. Its coalesced counter only
	// moves on completion, so give it a moment to join the flight.
	batchDone := make(chan struct{})
	var batchResp *QueryResponse
	var batchErr error
	go func() {
		defer close(batchDone)
		batchResp, batchErr = x.Execute(context.Background(), baseRequest2(names, req.K))
	}()
	time.Sleep(50 * time.Millisecond)

	// Drip source permits until the stalled client has its first event —
	// pinning the leader inside its parked sink deterministically — then
	// let the engine run free. The stalled sink stays parked: if either
	// follower's completion depended on it, the waits below would hang
	// (and the test would fail by timeout, not flake).
	go func() {
		for {
			select {
			case <-stalled.entered:
				close(g.open)
				return
			case <-leaderExited:
				// Extreme scheduling only: the overflow policy dropped the
				// leader before its first delivery. The engine still must
				// run free for the followers.
				close(g.open)
				return
			case g.permits <- struct{}{}:
				time.Sleep(time.Millisecond)
			}
		}
	}()

	select {
	case err := <-followerDone:
		if err != nil {
			t.Fatalf("stream follower: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream follower still waiting on the stalled leader sink")
	}
	select {
	case <-batchDone:
		if batchErr != nil {
			t.Fatalf("batch follower: %v", batchErr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch follower still waiting on the stalled leader sink")
	}
	select {
	case err := <-leaderDone:
		// Legal only in the extreme schedule where the overflow policy
		// dropped the leader before its first delivery; anything else
		// means a follower's completion unparked the stalled client.
		if asAPIError(err).Code != CodeOverloaded {
			t.Fatalf("stalled leader returned early: %v", err)
		}
		leaderDone <- err
	default: // still parked, as intended
	}

	// Byte-identity across delivery paths: the follower's collected
	// stream equals the coalesced batch response, which equals a legacy
	// (broker-disabled) run over the same catalog.
	collected, aerr := api.CollectStream(followerEvents)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if !reflect.DeepEqual(collected.Results, batchResp.Results) {
		t.Fatalf("follower stream differs from coalesced batch:\n%v\n%v", collected.Results, batchResp.Results)
	}
	if sum := followerEvents[len(followerEvents)-1].Summary; sum == nil || !sum.Cached {
		t.Errorf("follower summary not marked cached: %+v", sum)
	}
	legacy := NewExecutor(cat, Config{Workers: 1, CacheSize: 16, StreamBuffer: -1})
	legacyResp, err := legacy.Execute(context.Background(), baseRequest2(names, req.K))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batchResp.Results, legacyResp.Results) {
		t.Fatalf("brokered results differ from pre-broker output:\n%v\n%v", batchResp.Results, legacyResp.Results)
	}

	// Release the slow client: it was dropped by the overflow policy
	// (K+1 events versus a buffer of 4), which surfaces as overloaded on
	// that subscriber alone.
	close(stalled.release)
	if err := <-leaderDone; asAPIError(err).Code != CodeOverloaded {
		t.Fatalf("stalled leader error = %v, want %s", err, CodeOverloaded)
	}

	st := x.Stats()
	if st.EngineRuns != 1 {
		t.Errorf("engineRuns = %d, want 1 (one coalesced run)", st.EngineRuns)
	}
	if st.StreamsBrokered != 1 {
		t.Errorf("streamsBrokered = %d, want 1", st.StreamsBrokered)
	}
	if st.SlowSubscriberDrops != 1 {
		t.Errorf("slowSubscriberDrops = %d, want 1", st.SlowSubscriberDrops)
	}
}

func baseRequest2(names []string, k int) *QueryRequest {
	r := baseRequest(names)
	r.K = k
	return r
}

// TestBrokeredSlotReleasedAtEnumerationEnd: with one worker and a
// stalled stream client, a *different* query must still get the slot —
// the engine side releases it when enumeration finishes, not when the
// client finally drains.
func TestBrokeredSlotReleasedAtEnumerationEnd(t *testing.T) {
	cat, names := testSetup(t, 2, 24, 2)
	x := NewExecutor(cat, Config{
		Workers:        1,
		CacheSize:      16,
		StreamBuffer:   4,
		StreamOverflow: api.OverflowDrop,
	})

	req := baseRequest(names)
	req.K = 8
	stalled := newStallSink()
	leaderDone := make(chan error, 1)
	go func() { leaderDone <- x.ExecuteStream(context.Background(), req, stalled.sink) }()
	select {
	case <-stalled.entered: // parked on its first event, engine free-running
	case err := <-leaderDone: // or already dropped by overflow — engine free either way
		leaderDone <- err
	}

	// A different query (distinct K → distinct key) needs the only slot.
	other := baseRequest(names)
	other.K = 2
	other.TimeoutMillis = 5000
	resp, err := x.Execute(context.Background(), other)
	if err != nil {
		t.Fatalf("second query starved while a client stalls: %v", err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("second query returned %d results", len(resp.Results))
	}

	close(stalled.release)
	<-leaderDone
}

// TestBrokeredCacheDisabledStillDecouples: disabling the result cache
// must not silently disable the broker — streams become private
// brokered runs (no flight, nothing stored) that still release their
// worker slot at enumeration end.
func TestBrokeredCacheDisabledStillDecouples(t *testing.T) {
	cat, names := testSetup(t, 2, 24, 2)
	x := NewExecutor(cat, Config{
		Workers:        1,
		CacheSize:      -1,
		StreamBuffer:   4,
		StreamOverflow: api.OverflowDrop,
	})
	req := baseRequest(names)
	req.K = 8
	stalled := newStallSink()
	done := make(chan error, 1)
	go func() { done <- x.ExecuteStream(context.Background(), req, stalled.sink) }()
	select {
	case <-stalled.entered: // parked on its first event
	case err := <-done: // or already dropped by overflow
		done <- err
	}

	other := baseRequest(names)
	other.K = 2
	other.TimeoutMillis = 5000
	if _, err := x.Execute(context.Background(), other); err != nil {
		t.Fatalf("second query starved while a client stalls (cache disabled): %v", err)
	}
	if st := x.Stats(); st.StreamsBrokered != 1 || st.CacheEntries != 0 {
		t.Errorf("streamsBrokered=%d cacheEntries=%d, want 1/0", st.StreamsBrokered, st.CacheEntries)
	}
	close(stalled.release)
	<-done
}

// TestBrokeredBlockPolicyBoundsDelay: under the block policy the engine
// waits at most the configured block timeout per publish for a stalled
// subscriber, then drops it and completes — delay bounded by the buffer,
// not by the client.
func TestBrokeredBlockPolicyBoundsDelay(t *testing.T) {
	cat, names := testSetup(t, 2, 24, 2)
	x := NewExecutor(cat, Config{
		Workers:            2,
		CacheSize:          16,
		StreamBuffer:       2,
		StreamOverflow:     api.OverflowBlock,
		StreamBlockTimeout: 30 * time.Millisecond,
	})
	req := baseRequest(names)
	req.K = 8
	stalled := newStallSink()
	done := make(chan error, 1)
	go func() { done <- x.ExecuteStream(context.Background(), req, stalled.sink) }()

	// The run must complete (observable as a cache entry) despite the
	// stalled subscriber: one blocked publish, one drop, then free run.
	waitStat(t, func() int64 { return int64(x.Stats().CacheEntries) }, 1, "cacheEntries")
	if st := x.Stats(); st.SlowSubscriberDrops != 1 {
		t.Errorf("slowSubscriberDrops = %d, want 1", st.SlowSubscriberDrops)
	}
	close(stalled.release)
	if err := <-done; asAPIError(err).Code != CodeOverloaded {
		t.Fatalf("stalled client error = %v, want %s", err, CodeOverloaded)
	}
}

// TestBrokeredLeaderDisconnectDoesNotAbortRun: once a run is
// coalescable, the leader's client going away must not abort it — the
// engine completes under its own deadline and the response lands in the
// cache for everyone after.
func TestBrokeredLeaderDisconnectDoesNotAbortRun(t *testing.T) {
	cat, names := testSetup(t, 2, 24, 2)
	x := NewExecutor(cat, Config{Workers: 2, CacheSize: 16})
	g := newGate()
	x.wrapSource = func(s proxrank.Source) proxrank.Source { return gatedSource{Source: s, g: g} }

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- x.ExecuteStream(ctx, baseRequest(names), func(api.ResultEvent) error { return nil }) }()
	<-g.started
	cancel() // client disconnects mid-run
	if err := <-done; asAPIError(err).Code != CodeCanceled {
		t.Fatalf("disconnected leader error = %v, want %s", err, CodeCanceled)
	}
	close(g.open)

	waitStat(t, func() int64 { return int64(x.Stats().CacheEntries) }, 1, "cacheEntries")
	x.wrapSource = nil
	resp, err := x.Execute(context.Background(), baseRequest(names))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("abandoned run's response not served from cache")
	}
	if st := x.Stats(); st.EngineRuns != 1 {
		t.Errorf("engineRuns = %d, want 1 (the abandoned run completed; no rerun)", st.EngineRuns)
	}
}

// TestBrokeredFollowerRetriesAfterLeaderFailure: a mid-run-attached
// follower that saw no events must not inherit the leader's failure
// (which may be specific to the leader's own deadline) — like a
// done-channel follower, it retries and becomes the next leader.
func TestBrokeredFollowerRetriesAfterLeaderFailure(t *testing.T) {
	cat, names := testSetup(t, 2, 24, 2)
	x := NewExecutor(cat, Config{Workers: 2, CacheSize: 16})
	g := newGate()
	x.wrapSource = func(s proxrank.Source) proxrank.Source { return gatedSource{Source: s, g: g} }

	// Leader with a tiny private deadline; its gated engine cannot
	// produce a single event before it expires.
	lreq := baseRequest(names)
	lreq.TimeoutMillis = 80
	leaderDone := make(chan error, 1)
	go func() {
		leaderDone <- x.ExecuteStream(context.Background(), lreq, func(api.ResultEvent) error { return nil })
	}()
	<-g.started

	// Follower with a generous deadline attaches mid-run.
	freq := baseRequest(names)
	freq.TimeoutMillis = 10_000
	followerDone := make(chan error, 1)
	var events []api.ResultEvent
	go func() {
		followerDone <- x.ExecuteStream(context.Background(), freq, func(ev api.ResultEvent) error {
			events = append(events, ev)
			return nil
		})
	}()
	waitStat(t, func() int64 { return x.Stats().MidRunAttaches }, 1, "midRunAttaches")

	// Let the leader's deadline lapse while the engine is still gated,
	// then open the gate: the leader's run dies on its deadline, the
	// follower must retry, win the retired flight, and complete.
	time.Sleep(150 * time.Millisecond)
	close(g.open)

	if err := <-leaderDone; asAPIError(err).Code != CodeTimeout {
		t.Fatalf("leader error = %v, want %s", err, CodeTimeout)
	}
	select {
	case err := <-followerDone:
		if err != nil {
			t.Fatalf("follower inherited the leader's failure: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("follower never completed after the leader failed")
	}
	if len(events) != freq.K+1 {
		t.Fatalf("follower saw %d events, want %d results + summary", len(events), freq.K)
	}
	st := x.Stats()
	if st.EngineRuns != 2 {
		t.Errorf("engineRuns = %d, want 2 (failed leader + retried follower)", st.EngineRuns)
	}
	if st.Coalesced != 0 {
		t.Errorf("coalesced = %d, want 0 (nothing was shared)", st.Coalesced)
	}
}

// TestBrokerDisabledLegacyDelivery: StreamBuffer < 0 restores the
// sink-paced leader and completed-response follower replay.
func TestBrokerDisabledLegacyDelivery(t *testing.T) {
	cat, names := testSetup(t, 2, 24, 2)
	x := NewExecutor(cat, Config{Workers: 2, CacheSize: 16, StreamBuffer: -1})

	events, err := collectEvents(t, x, baseRequest(names))
	if err != nil {
		t.Fatal(err)
	}
	collected, aerr := api.CollectStream(events)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if len(collected.Results) != 3 {
		t.Fatalf("legacy stream returned %d results", len(collected.Results))
	}
	if st := x.Stats(); st.StreamsBrokered != 0 {
		t.Errorf("streamsBrokered = %d with the broker disabled", st.StreamsBrokered)
	}
}
