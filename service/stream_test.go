package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	proxrank "repro"
	"repro/api"
)

// collectEvents runs ExecuteStream and gathers the event sequence.
func collectEvents(t *testing.T, x *Executor, req *QueryRequest) ([]api.ResultEvent, error) {
	t.Helper()
	var events []api.ResultEvent
	err := x.ExecuteStream(context.Background(), req, func(ev api.ResultEvent) error {
		events = append(events, ev)
		return nil
	})
	return events, err
}

// TestExecuteStreamEvents: a live stream delivers rank-ordered result
// events, exactly one trailing summary, and collected results identical
// to the batch path.
func TestExecuteStreamEvents(t *testing.T) {
	cat, names := testSetup(t, 2, 40, 2)
	x := NewExecutor(cat, Config{Workers: 2, CacheSize: 8})
	req := baseRequest(names)
	req.NoCache = true

	events, err := collectEvents(t, x, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != req.K+1 {
		t.Fatalf("%d events, want %d results + 1 summary", len(events), req.K)
	}
	for i, ev := range events[:req.K] {
		if ev.Type != api.EventResult || ev.Rank != i+1 || ev.Result == nil {
			t.Fatalf("event %d: %+v, want result rank %d", i, ev, i+1)
		}
	}
	sum := events[req.K]
	if sum.Type != api.EventSummary || sum.Summary == nil || sum.Summary.Count != req.K || sum.Summary.Cached || sum.Summary.DNF {
		t.Fatalf("bad summary: %+v", sum)
	}
	if sum.Summary.Cost.SumDepths <= 0 {
		t.Fatalf("summary carries no cost: %+v", sum.Summary.Cost)
	}

	batch, err := x.Execute(context.Background(), baseRequestNoCache(names))
	if err != nil {
		t.Fatal(err)
	}
	collected, aerr := api.CollectStream(events)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if !reflect.DeepEqual(collected.Results, batch.Results) {
		t.Fatalf("stream results differ from batch:\n%v\n%v", collected.Results, batch.Results)
	}
	if st := x.Stats(); st.Streamed != 1 || st.Queries != 2 {
		t.Errorf("counters: %+v", st)
	}
}

func baseRequestNoCache(names []string) *QueryRequest {
	r := baseRequest(names)
	r.NoCache = true
	return r
}

// TestExecuteStreamDNF: a capped stream delivers the certified prefix,
// then the batch path's uncertified best-effort tail, then a summary
// flagged DNF — so collected results match the batch DNF response.
func TestExecuteStreamDNF(t *testing.T) {
	cat, names := testSetup(t, 2, 60, 2)
	x := NewExecutor(cat, Config{Workers: 2, CacheSize: 8})
	req := baseRequestNoCache(names)
	req.K = 10
	req.MaxSumDepths = 6

	events, err := collectEvents(t, x, req)
	if err != nil {
		t.Fatal(err)
	}
	collected, aerr := api.CollectStream(events)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if !collected.DNF {
		t.Fatal("summary not flagged DNF")
	}
	req2 := baseRequestNoCache(names)
	req2.K = 10
	req2.MaxSumDepths = 6
	batch, err := x.Execute(context.Background(), req2)
	if err != nil {
		t.Fatal(err)
	}
	if !batch.DNF {
		t.Fatal("batch twin not DNF")
	}
	if !reflect.DeepEqual(collected.Results, batch.Results) {
		t.Fatalf("capped stream differs from capped batch:\n%v\n%v", collected.Results, batch.Results)
	}
}

// TestExecuteStreamValidation: failures before the first event come back
// as plain structured errors with no events emitted.
func TestExecuteStreamValidation(t *testing.T) {
	cat, names := testSetup(t, 2, 20, 2)
	x := NewExecutor(cat, Config{Workers: 2, CacheSize: 8})
	for _, tc := range []struct {
		name   string
		mutate func(*QueryRequest)
		code   ErrorCode
	}{
		{"bad k", func(r *QueryRequest) { r.K = 0 }, CodeBadRequest},
		{"unknown relation", func(r *QueryRequest) { r.Relations = []string{"A", "ghost"} }, CodeNotFound},
		{"dim mismatch", func(r *QueryRequest) { r.Query = []float64{1, 2, 3} }, CodeBadRequest},
	} {
		req := baseRequest(names)
		tc.mutate(req)
		events, err := collectEvents(t, x, req)
		if len(events) != 0 {
			t.Errorf("%s: %d events before the error", tc.name, len(events))
		}
		ae := asAPIError(err)
		if ae == nil || ae.Code != tc.code {
			t.Errorf("%s: error %v, want code %s", tc.name, err, tc.code)
		}
	}
}

// gate blocks wrapped sources until permits arrive (or the floodgate
// opens), to hold an engine run mid-flight deterministically.
type gate struct {
	permits chan struct{}
	open    chan struct{} // closed = unlimited permits
	started chan struct{}
	once    sync.Once
}

func newGate() *gate {
	return &gate{
		permits: make(chan struct{}, 1<<16),
		open:    make(chan struct{}),
		started: make(chan struct{}),
	}
}

type gatedSource struct {
	proxrank.Source
	g *gate
}

func (s gatedSource) Next() (proxrank.Tuple, error) {
	s.g.once.Do(func() { close(s.g.started) })
	select {
	case <-s.g.open:
	case <-s.g.permits:
	}
	return s.Source.Next()
}

// TestExecuteStreamCoalescesWithBatch: while a stream leader holds the
// single-flight key, an identical batch query joins as follower and is
// served the leader's response — one engine run across consumption
// models, keyed by the canonical encoding.
func TestExecuteStreamCoalescesWithBatch(t *testing.T) {
	cat, names := testSetup(t, 2, 24, 2)
	x := NewExecutor(cat, Config{Workers: 4, CacheSize: 16})
	g := newGate()
	x.wrapSource = func(s proxrank.Source) proxrank.Source { return gatedSource{Source: s, g: g} }

	req := baseRequest(names)
	streamDone := make(chan error, 1)
	var events []api.ResultEvent
	go func() {
		streamDone <- x.ExecuteStream(context.Background(), req, func(ev api.ResultEvent) error {
			events = append(events, ev)
			return nil
		})
	}()
	<-g.started // leader owns the flight key and is parked on the gate

	batchDone := make(chan struct{})
	var batchResp *QueryResponse
	var batchErr error
	go func() {
		defer close(batchDone)
		batchResp, batchErr = x.Execute(context.Background(), baseRequest(names))
	}()
	// Give the follower a moment to join the flight, then open the gate.
	time.Sleep(50 * time.Millisecond)
	close(g.open)

	if err := <-streamDone; err != nil {
		t.Fatal(err)
	}
	<-batchDone
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	collected, aerr := api.CollectStream(events)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if !reflect.DeepEqual(collected.Results, batchResp.Results) {
		t.Fatalf("coalesced batch differs from stream leader:\n%v\n%v", collected.Results, batchResp.Results)
	}
	if !batchResp.Cached {
		t.Error("follower response not marked cached")
	}
	st := x.Stats()
	if st.Coalesced != 1 || st.EngineRuns != 1 {
		t.Errorf("coalesced %d engineRuns %d, want 1/1", st.Coalesced, st.EngineRuns)
	}
}

// readEvent decodes one NDJSON line.
func readEvent(t *testing.T, br *bufio.Reader) (api.ResultEvent, json.RawMessage) {
	t.Helper()
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading stream line: %v", err)
	}
	var ev struct {
		Type   api.EventType   `json:"type"`
		Rank   int             `json:"rank"`
		Result json.RawMessage `json:"result"`
		Error  *APIError       `json:"error"`
	}
	if err := json.Unmarshal(line, &ev); err != nil {
		t.Fatalf("bad stream line %q: %v", line, err)
	}
	return api.ResultEvent{Type: ev.Type, Rank: ev.Rank, Error: ev.Error}, ev.Result
}

// TestHTTPStreamDeliversBeforeCompletion is the acceptance test for the
// streaming endpoint: with the engine's sources gated behind permits,
// the client reads the rank-1 result while the run is provably still in
// flight (the engine cannot finish: it would need more permits than
// were granted), and after the gate opens the collected results are
// byte-identical to POST /v1/topk for the same request.
func TestHTTPStreamDeliversBeforeCompletion(t *testing.T) {
	cat, names := testSetup(t, 2, 12, 2)
	exec := NewExecutor(cat, Config{Workers: 2, CacheSize: 16, DefaultTimeout: time.Minute})
	g := newGate()
	exec.wrapSource = func(s proxrank.Source) proxrank.Source { return gatedSource{Source: s, g: g} }
	srv := httptest.NewServer(NewServer(cat, exec).Handler())
	t.Cleanup(srv.Close)

	// K beyond the full cross product forces the run to drain every
	// tuple, so it cannot complete while any pull is still gated.
	req := baseRequest(names)
	req.K = 150 // 12 × 12 = 144 combinations
	req.NoCache = true
	total := 24 // tuples across both relations

	// Drip at most total−1 permits: enough to certify rank 1 (the probe
	// says ~9 pulls), never enough to finish the run (which needs every
	// tuple plus one exhaustion read per source). If the endpoint
	// buffered results until completion, the header/first-line reads
	// below would block forever and the test would time out — the
	// failure mode, not a flake.
	stopDrip := make(chan struct{})
	go func() {
		for i := 0; i < total-1; i++ {
			select {
			case <-stopDrip:
				return
			case g.permits <- struct{}{}:
				time.Sleep(time.Millisecond)
			}
		}
	}()

	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/v1/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	ev, raw := readEvent(t, br)
	close(stopDrip)
	if ev.Type != api.EventResult || ev.Rank != 1 || raw == nil {
		t.Fatalf("first line is %+v, want the rank-1 result", ev)
	}
	if inflight := exec.Stats().InFlight; inflight != 1 {
		t.Fatalf("rank-1 result arrived but no engine run is in flight (inFlight=%d)", inflight)
	}

	// Open the gate, drain the stream, and collect the result bytes.
	close(g.open)
	streamResults := []json.RawMessage{raw}
	var sawSummary bool
	for !sawSummary {
		ev, raw := readEvent(t, br)
		switch ev.Type {
		case api.EventResult:
			streamResults = append(streamResults, raw)
		case api.EventSummary:
			sawSummary = true
		case api.EventError:
			t.Fatalf("stream failed: %v", ev.Error)
		}
	}
	if len(streamResults) != 144 {
		t.Fatalf("stream delivered %d results, want 144", len(streamResults))
	}

	// Byte-identity with the legacy batch endpoint.
	exec.wrapSource = nil
	httpResp, data, err := postTopK(srv.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("topk status %d: %s", httpResp.StatusCode, data)
	}
	var batch struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(streamResults) {
		t.Fatalf("batch %d results, stream %d", len(batch.Results), len(streamResults))
	}
	for i := range batch.Results {
		if !bytes.Equal(compactJSON(t, batch.Results[i]), compactJSON(t, streamResults[i])) {
			t.Fatalf("result %d differs:\nbatch:  %s\nstream: %s", i, batch.Results[i], streamResults[i])
		}
	}
}

// compactJSON normalizes whitespace so raw fragments from different
// encoders compare byte-for-byte.
func compactJSON(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestQueryEndpointsEquivalent: /v1/topk, /v1/query, and the collected
// output of /v1/query/stream answer one request with byte-identical
// result arrays, across the live, cache-hit, and replayed paths.
func TestQueryEndpointsEquivalent(t *testing.T) {
	srv, names, exec := testServer(t)
	req := &QueryRequest{Query: []float64{0.2, -0.15}, Relations: names, K: 5}
	post := func(path string) []byte {
		body, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Live run through the legacy endpoint, then a cache hit through the
	// versioned one.
	legacy := post("/v1/topk")
	versioned := post("/v1/query")
	var a, b struct {
		Results json.RawMessage `json:"results"`
		Cached  bool            `json:"cached"`
	}
	if err := json.Unmarshal(legacy, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(versioned, &b); err != nil {
		t.Fatal(err)
	}
	if a.Cached || !b.Cached {
		t.Fatalf("expected live-then-cached, got %v/%v", a.Cached, b.Cached)
	}
	if !bytes.Equal(compactJSON(t, a.Results), compactJSON(t, b.Results)) {
		t.Fatalf("legacy and versioned results differ:\n%s\n%s", a.Results, b.Results)
	}

	// The stream replays the same cached response event by event.
	stream := post("/v1/query/stream")
	var streamResults []json.RawMessage
	cachedSummary := false
	for _, line := range bytes.Split(bytes.TrimSpace(stream), []byte("\n")) {
		var ev struct {
			Type    api.EventType   `json:"type"`
			Result  json.RawMessage `json:"result"`
			Summary *api.Summary    `json:"summary"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		switch ev.Type {
		case api.EventResult:
			streamResults = append(streamResults, ev.Result)
		case api.EventSummary:
			cachedSummary = ev.Summary.Cached
		}
	}
	if !cachedSummary {
		t.Error("stream summary not marked cached on a cache hit")
	}
	joined := append([]byte("["), bytes.Join(mapCompact(t, streamResults), []byte(","))...)
	joined = append(joined, ']')
	if !bytes.Equal(compactJSON(t, a.Results), joined) {
		t.Fatalf("stream results differ from batch:\n%s\n%s", a.Results, joined)
	}
	if st := exec.Stats(); st.CacheHits != 2 {
		t.Errorf("cacheHits = %d, want 2", st.CacheHits)
	}
}

func mapCompact(t *testing.T, raws []json.RawMessage) [][]byte {
	out := make([][]byte, len(raws))
	for i, r := range raws {
		out[i] = compactJSON(t, r)
	}
	return out
}
