package service

import (
	"sync"
	"sync/atomic"

	"repro/api"
	"repro/internal/broker"
)

// streamTopic is the delivery topic of one in-flight streamed query: the
// engine publishes wire events into it at engine speed, subscribers
// (the leader's sink, coalesced followers) drain at their own.
type streamTopic = broker.Topic[api.ResultEvent]

// flightGroup coalesces concurrent identical cache misses: the first
// caller of a key becomes the leader and runs the engine; every caller
// that arrives before the leader finishes waits for the leader's outcome
// instead of racing a duplicate engine run. Keys are the executor's
// cache keys, so "identical" carries the same meaning as cache identity,
// catalog generations included.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight engine run. resp and err are written by
// the leader before done is closed and read-only afterwards.
type flightCall struct {
	done chan struct{}
	resp *QueryResponse
	err  error
	// topic, when set, is a streaming leader's live delivery topic: a
	// follower that finds one attaches mid-run — replaying the certified
	// prefix, then tailing live events — instead of waiting on done for
	// the completed response. Stored by the leader after setup succeeds;
	// a follower that loads nil (the leader is still setting up, or it is
	// a batch leader) falls back to waiting on done.
	topic atomic.Pointer[streamTopic]
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join registers interest in key. The boolean is true for the leader —
// who must eventually call leave — and false for followers, who wait on
// the call's done channel (or attach to its topic).
func (g *flightGroup) join(key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// leave publishes the leader's outcome and wakes the followers. The key
// is retired before done is closed, so a follower that retries after a
// leader failure can become the next leader.
func (g *flightGroup) leave(key string, c *flightCall, resp *QueryResponse, err error) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.resp, c.err = resp, err
	close(c.done)
}
