package service

import "sync"

// flightGroup coalesces concurrent identical cache misses: the first
// caller of a key becomes the leader and runs the engine; every caller
// that arrives before the leader finishes waits for the leader's outcome
// instead of racing a duplicate engine run. Keys are the executor's
// cache keys, so "identical" carries the same meaning as cache identity,
// catalog generations included.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight engine run. resp and err are written by
// the leader before done is closed and read-only afterwards.
type flightCall struct {
	done chan struct{}
	resp *QueryResponse
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join registers interest in key. The boolean is true for the leader —
// who must eventually call leave — and false for followers, who wait on
// the call's done channel.
func (g *flightGroup) join(key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// leave publishes the leader's outcome and wakes the followers. The key
// is retired before done is closed, so a follower that retries after a
// leader failure can become the next leader.
func (g *flightGroup) leave(key string, c *flightCall, resp *QueryResponse, err error) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.resp, c.err = resp, err
	close(c.done)
}
