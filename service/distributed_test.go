package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	proxrank "repro"
	"repro/api"
	"repro/internal/shardrpc"
)

// distFixture is one distributed deployment next to its single-node
// twin: the same relations, partitioned identically, served once by a
// fleet of shard servers behind a coordinator and once by a plain local
// executor. Byte-identity between the two is the system's core
// distributed invariant.
type distFixture struct {
	names []string
	// single-node twin
	local *Executor
	// coordinator over the fleet
	coord    *Executor
	coordCat *Catalog
	fleet    *shardrpc.Fleet
	servers  []*shardrpc.Server
}

// newDistFixture partitions nRels tie-prone relations into shards and
// serves them from nServers shard servers (server i owns shard s when
// s%n == i), plus a coordinator and a single-node twin.
func newDistFixture(t testing.TB, nRels, size, shards, nServers int, strategy proxrank.PartitionStrategy) *distFixture {
	t.Helper()
	f := &distFixture{}
	rels := make([]*proxrank.Relation, nRels)
	for i := range rels {
		f.names = append(f.names, string(rune('A'+i)))
		rels[i] = testRelation(t, f.names[i], int64(300+i), size, 2)
	}

	localCat := NewCatalog()
	addrs := make([]string, nServers)
	for i := 0; i < nServers; i++ {
		cat := NewCatalog()
		for _, rel := range rels {
			if err := cat.RegisterSharded(rel.Name, rel, shards, strategy); err != nil {
				t.Fatal(err)
			}
		}
		exec := NewExecutor(cat, Config{Workers: 2, CacheSize: -1})
		backend := NewShardBackend(cat, exec, Ownership{Index: i, Count: nServers})
		srv := shardrpc.NewServer(backend)
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		backend.SetName(bound.String())
		addrs[i] = bound.String()
		f.servers = append(f.servers, srv)
		t.Cleanup(srv.Close)
	}
	for _, rel := range rels {
		if err := localCat.RegisterSharded(rel.Name, rel, shards, strategy); err != nil {
			t.Fatal(err)
		}
	}
	f.local = NewExecutor(localCat, Config{Workers: 2, CacheSize: -1})

	f.fleet = shardrpc.NewFleet(addrs)
	t.Cleanup(f.fleet.Close)
	remotes, err := f.fleet.Discover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	f.coordCat = NewCatalog()
	for name, rr := range remotes {
		if err := f.coordCat.RegisterRemote(name, rr); err != nil {
			t.Fatal(err)
		}
	}
	f.coord = NewExecutor(f.coordCat, Config{Workers: 2, CacheSize: -1})
	return f
}

// scrubResponse canonicalizes a response for comparison: wall-time
// fields are the only legitimate difference between a local and a
// distributed answer, so they are zeroed before the byte comparison.
// Scores survive via Float64bits inside the JSON encoding (Go marshals
// float64 shortest-round-trip).
func scrubResponse(t testing.TB, resp *api.Response) string {
	t.Helper()
	c := *resp
	c.Cost.ElapsedMicros = 0
	buf, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// scrubEvents canonicalizes a streamed event sequence the same way.
func scrubEvents(t testing.TB, events []api.ResultEvent) string {
	t.Helper()
	var b strings.Builder
	for _, ev := range events {
		if ev.Summary != nil {
			s := *ev.Summary
			s.Cost.ElapsedMicros = 0
			ev.Summary = &s
		}
		buf, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(buf)
		b.WriteByte('\n')
	}
	return b.String()
}

func getJSON(t testing.TB, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func getBody(t testing.TB, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestDistributedByteIdentity: coordinator + 3 shard servers answer
// byte-identically to a single node across algorithms × access kinds ×
// batch/stream consumption — scores, order, stats, and event sequence.
func TestDistributedByteIdentity(t *testing.T) {
	f := newDistFixture(t, 2, 120, 5, 3, proxrank.GridPartition)
	queries := [][]float64{{0.2, -0.1}, {1.4, 1.1}, {-2.0, 0.4}}
	for _, algo := range []string{"cbrr", "cbpa", "tbrr", "tbpa"} {
		for _, access := range []string{api.AccessDistance, api.AccessScore} {
			for qi, q := range queries {
				req := &QueryRequest{
					Query:     q,
					Relations: f.names,
					K:         4,
					Algorithm: algo,
					Access:    access,
				}
				name := fmt.Sprintf("%s/%s/q%d", algo, access, qi)
				want, err := f.local.Execute(context.Background(), req)
				if err != nil {
					t.Fatalf("%s: local: %v", name, err)
				}
				got, err := f.coord.Execute(context.Background(), req)
				if err != nil {
					t.Fatalf("%s: coordinator: %v", name, err)
				}
				if w, g := scrubResponse(t, want), scrubResponse(t, got); w != g {
					t.Fatalf("%s: batch responses differ\nlocal:       %s\ncoordinator: %s", name, w, g)
				}
				wantEv, err := collectEvents(t, f.local, req)
				if err != nil {
					t.Fatalf("%s: local stream: %v", name, err)
				}
				gotEv, err := collectEvents(t, f.coord, req)
				if err != nil {
					t.Fatalf("%s: coordinator stream: %v", name, err)
				}
				if w, g := scrubEvents(t, wantEv), scrubEvents(t, gotEv); w != g {
					t.Fatalf("%s: event streams differ\nlocal:\n%s\ncoordinator:\n%s", name, w, g)
				}
			}
		}
	}
}

// TestDistributedPruning: a far-corner query under grid partitioning
// must leave whole remote shards unopened, and say so in the stats.
func TestDistributedPruning(t *testing.T) {
	f := newDistFixture(t, 2, 160, 6, 2, proxrank.GridPartition)
	req := &QueryRequest{
		Query:     []float64{-2.5, -2.5},
		Relations: f.names,
		K:         2,
	}
	want, err := f.local.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.coord.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if w, g := scrubResponse(t, want), scrubResponse(t, got); w != g {
		t.Fatalf("pruned answer differs from local\nlocal:       %s\ncoordinator: %s", w, g)
	}
	st := f.coord.Stats()
	if st.ShardsPruned == 0 {
		t.Fatalf("far-corner K=2 query pruned nothing (opened %d remote streams)", st.RemoteStreamsOpened)
	}
	if st.ShardsPruned+st.RemoteStreamsOpened != int64(f.coordCat.TotalShards()) {
		// Every remote shard source ends the query either opened or pruned.
		t.Fatalf("pruned %d + opened %d does not cover the %d shards",
			st.ShardsPruned, st.RemoteStreamsOpened, f.coordCat.TotalShards())
	}
}

// TestDistributedMixedLocalRemote: a coordinator holding one relation
// locally and one remotely merges both worlds byte-identically.
func TestDistributedMixedLocalRemote(t *testing.T) {
	f := newDistFixture(t, 2, 100, 4, 2, proxrank.HashPartition)
	// Rebuild the coordinator catalog: A local, B remote.
	remotes, err := f.fleet.Discover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mixedCat := NewCatalog()
	if err := mixedCat.RegisterSharded("A", testRelation(t, "A", 300, 100, 2), 4, proxrank.HashPartition); err != nil {
		t.Fatal(err)
	}
	if err := mixedCat.RegisterRemote("B", remotes["B"]); err != nil {
		t.Fatal(err)
	}
	mixed := NewExecutor(mixedCat, Config{Workers: 2, CacheSize: -1})
	req := &QueryRequest{Query: []float64{0.3, 0.3}, Relations: f.names, K: 5}
	want, err := f.local.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mixed.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if w, g := scrubResponse(t, want), scrubResponse(t, got); w != g {
		t.Fatalf("mixed local+remote differs\nlocal: %s\nmixed: %s", w, g)
	}
}

// TestDistributedPeerDeath: with no replicas, losing a peer surfaces as
// a clean structured unavailable error when the request forbids partial
// results — never a hang or a corrupt partial answer — and as a marked
// degraded response under the default partial policy.
func TestDistributedPeerDeath(t *testing.T) {
	f := newDistFixture(t, 2, 80, 4, 2, proxrank.HashPartition)
	for _, p := range f.fleet.Peers() {
		p.DialTimeout = 200 * time.Millisecond
		p.PullTimeout = 500 * time.Millisecond
	}
	f.servers[1].Close() // peer 1 dies for good
	req := &QueryRequest{Query: []float64{0, 0}, Relations: f.names, K: 3, Partial: api.PartialForbid}
	_, err := f.coord.Execute(context.Background(), req)
	if err == nil {
		t.Fatal("partial=forbid query over a dead, unreplicated peer succeeded")
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeUnavailable {
		t.Fatalf("got %v, want *APIError with code %q", err, CodeUnavailable)
	}

	// The default policy degrades instead: the query completes over the
	// surviving shards and says so.
	resp, err := f.coord.Execute(context.Background(), &QueryRequest{Query: []float64{0, 0}, Relations: f.names, K: 3})
	if err != nil {
		t.Fatalf("partial=allow query failed: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("response over a dead peer not marked degraded")
	}
	if len(resp.ShardsMissing) == 0 {
		t.Fatal("degraded response lists no missing shards")
	}
	if resp.Cached {
		t.Fatal("degraded response claims to be cached")
	}
}

// TestDistributedReplicaFailover: when every shard is replicated on a
// second peer, losing one mid-deployment is invisible to queries.
func TestDistributedReplicaFailover(t *testing.T) {
	relA := testRelation(t, "A", 300, 100, 2)
	relB := testRelation(t, "B", 301, 100, 2)
	var servers []*shardrpc.Server
	addrs := make([]string, 2)
	for i := 0; i < 2; i++ {
		cat := NewCatalog()
		for _, rel := range []*proxrank.Relation{relA, relB} {
			if err := cat.RegisterSharded(rel.Name, rel, 4, proxrank.HashPartition); err != nil {
				t.Fatal(err)
			}
		}
		exec := NewExecutor(cat, Config{Workers: 2, CacheSize: -1})
		backend := NewShardBackend(cat, exec, Ownership{}) // owns everything
		srv := shardrpc.NewServer(backend)
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		backend.SetName(bound.String())
		addrs[i] = bound.String()
		servers = append(servers, srv)
		t.Cleanup(srv.Close)
	}
	fleet := shardrpc.NewFleet(addrs)
	t.Cleanup(fleet.Close)
	remotes, err := fleet.Discover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	for _, name := range []string{"A", "B"} {
		if err := cat.RegisterRemote(name, remotes[name]); err != nil {
			t.Fatal(err)
		}
	}
	coord := NewExecutor(cat, Config{Workers: 2, CacheSize: -1})
	for _, p := range fleet.Peers() {
		p.DialTimeout = 200 * time.Millisecond
		p.PullTimeout = 500 * time.Millisecond
	}

	localCat := NewCatalog()
	for _, rel := range []*proxrank.Relation{relA, relB} {
		if err := localCat.RegisterSharded(rel.Name, rel, 4, proxrank.HashPartition); err != nil {
			t.Fatal(err)
		}
	}
	local := NewExecutor(localCat, Config{Workers: 2, CacheSize: -1})

	servers[0].Close() // first-choice owner dies; replica carries on
	req := &QueryRequest{Query: []float64{0.1, 0.1}, Relations: []string{"A", "B"}, K: 3}
	want, err := local.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Execute(context.Background(), req)
	if err != nil {
		t.Fatalf("failover query failed: %v", err)
	}
	if w, g := scrubResponse(t, want), scrubResponse(t, got); w != g {
		t.Fatalf("failover answer differs\nlocal:       %s\ncoordinator: %s", w, g)
	}
}

// TestCoordinatorEndpoints: /v1/relations reports per-peer ownership,
// /v1/healthz reports per-peer health and degrades (status only, still
// 200) when a peer is down, /v1/stats carries the remote counters.
func TestCoordinatorEndpoints(t *testing.T) {
	f := newDistFixture(t, 2, 80, 4, 2, proxrank.HashPartition)
	for _, p := range f.fleet.Peers() {
		p.DialTimeout = 200 * time.Millisecond
		p.PullTimeout = 500 * time.Millisecond
	}
	srv := NewServer(f.coordCat, f.coord)
	srv.AttachFleet(f.fleet)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var rels struct {
		Relations []RelationInfo `json:"relations"`
	}
	getJSON(t, ts.URL+"/v1/relations", &rels)
	if len(rels.Relations) != 2 || !rels.Relations[0].Remote || !rels.Relations[1].Remote {
		t.Fatalf("relations: %+v, want two remote entries", rels.Relations)
	}
	ownedTotal := 0
	for _, shards := range rels.Relations[0].Owners {
		ownedTotal += len(shards)
	}
	if len(rels.Relations[0].Owners) != 2 || ownedTotal != rels.Relations[0].Shards {
		t.Fatalf("ownership map incomplete: %+v", rels.Relations[0].Owners)
	}

	var health struct {
		Status string       `json:"status"`
		Peers  []PeerHealth `json:"peers"`
	}
	getJSON(t, ts.URL+"/v1/healthz", &health)
	if health.Status != "ok" || len(health.Peers) != 2 {
		t.Fatalf("healthy fleet: %+v", health)
	}

	// Run one query so the stats carry remote counters.
	req := &QueryRequest{Query: []float64{0, 0}, Relations: f.names, K: 3}
	if _, err := f.coord.Execute(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	var stats struct {
		StatsSnapshot
		Peers []PeerStats `json:"peers"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if len(stats.Peers) != 2 {
		t.Fatalf("stats peers: %+v", stats.Peers)
	}
	var pulls int64
	for _, p := range stats.Peers {
		pulls += p.Pulls
	}
	if pulls == 0 || stats.RemoteStreamsOpened == 0 {
		t.Fatalf("remote counters empty after a query: pulls=%d opened=%d", pulls, stats.RemoteStreamsOpened)
	}

	// Kill a peer: healthz degrades but stays a 200 liveness signal.
	f.servers[1].Close()
	getJSON(t, ts.URL+"/v1/healthz", &health)
	if health.Status != "degraded" {
		t.Fatalf("one peer down: status %q, want degraded", health.Status)
	}
	downs := 0
	for _, p := range health.Peers {
		if p.Status == "down" {
			downs++
			if p.Coverage != "bound-dependent" {
				t.Fatalf("unreplicated down peer coverage %q, want bound-dependent", p.Coverage)
			}
		}
	}
	if downs != 1 {
		t.Fatalf("%d peers down, want 1: %+v", downs, health.Peers)
	}

	// The pruning counter is exposed on /metrics under its canonical name.
	body := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, "proxrank_shards_pruned_total") ||
		!strings.Contains(body, "proxrank_rpc_pull_duration_seconds") {
		t.Fatal("metrics exposition is missing the fleet families")
	}
}

// TestRemoteScoresBitExact double-checks the JSON wire keeps float bits:
// the remote response's scores must be bit-identical, not just close.
func TestRemoteScoresBitExact(t *testing.T) {
	f := newDistFixture(t, 2, 90, 3, 2, proxrank.HashPartition)
	req := &QueryRequest{Query: []float64{0.7, -0.3}, Relations: f.names, K: 5}
	want, err := f.local.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.coord.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Results) != len(got.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(want.Results), len(got.Results))
	}
	for i := range want.Results {
		if math.Float64bits(want.Results[i].Score) != math.Float64bits(got.Results[i].Score) {
			t.Fatalf("result %d: score bits differ: %x vs %x", i,
				math.Float64bits(want.Results[i].Score), math.Float64bits(got.Results[i].Score))
		}
	}
}
