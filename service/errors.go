package service

import (
	"context"
	"errors"

	proxrank "repro"
	"repro/api"
)

// The service's error model is the transport-neutral one defined by the
// api package; these aliases keep the historical service names working
// while guaranteeing there is exactly one error vocabulary across
// transports.
type (
	// ErrorCode classifies API failures.
	ErrorCode = api.ErrorCode
	// APIError is the structured error of the serving layer.
	APIError = api.Error
)

// Error codes, re-exported from the api package.
const (
	CodeBadRequest  = api.CodeBadRequest
	CodeNotFound    = api.CodeNotFound
	CodeConflict    = api.CodeConflict
	CodeTimeout     = api.CodeTimeout
	CodeCanceled    = api.CodeCanceled
	CodeOverloaded  = api.CodeOverloaded
	CodeDNF         = api.CodeDNF
	CodeInternal    = api.CodeInternal
	CodeUnavailable = api.CodeUnavailable
)

// apiErrorf builds an APIError with a formatted message.
func apiErrorf(code ErrorCode, format string, args ...any) *APIError {
	return api.Errorf(code, format, args...)
}

// asAPIError coerces any error into an APIError, classifying context
// cancellation, deadline expiry, and capped (DNF) runs along the way.
func asAPIError(err error) *APIError {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return apiErrorf(CodeTimeout, "%v", err)
	case errors.Is(err, context.Canceled):
		return apiErrorf(CodeCanceled, "%v", err)
	case errors.Is(err, proxrank.ErrDNF):
		return apiErrorf(CodeDNF, "%v", err)
	default:
		return apiErrorf(CodeInternal, "%v", err)
	}
}
