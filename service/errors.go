package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// ErrorCode classifies API failures; it is the machine-readable half of
// the structured error body every endpoint returns.
type ErrorCode string

const (
	// CodeBadRequest marks malformed or invalid requests.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeNotFound marks references to unregistered relations.
	CodeNotFound ErrorCode = "not_found"
	// CodeConflict marks duplicate registrations.
	CodeConflict ErrorCode = "conflict"
	// CodeTimeout marks queries that exceeded their deadline.
	CodeTimeout ErrorCode = "timeout"
	// CodeCanceled marks queries whose caller went away.
	CodeCanceled ErrorCode = "canceled"
	// CodeOverloaded marks queries shed because the worker pool and its
	// wait budget were exhausted.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeInternal marks unexpected engine failures.
	CodeInternal ErrorCode = "internal"
)

// httpStatus maps an error code onto the response status.
func (c ErrorCode) httpStatus() int {
	switch c {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeConflict:
		return http.StatusConflict
	case CodeTimeout:
		return http.StatusGatewayTimeout
	case CodeCanceled:
		// Closest standard status for "client went away".
		return http.StatusRequestTimeout
	case CodeOverloaded:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// APIError is the structured error of the serving layer: a stable code
// for programs, a message for humans.
type APIError struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// Error implements error.
func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// apiErrorf builds an APIError with a formatted message.
func apiErrorf(code ErrorCode, format string, args ...any) *APIError {
	return &APIError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// asAPIError coerces any error into an APIError, classifying context
// cancellation and deadline expiry along the way.
func asAPIError(err error) *APIError {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return apiErrorf(CodeTimeout, "%v", err)
	case errors.Is(err, context.Canceled):
		return apiErrorf(CodeCanceled, "%v", err)
	default:
		return apiErrorf(CodeInternal, "%v", err)
	}
}
