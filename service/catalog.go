// Package service turns the proximity rank join library into a
// multi-tenant query-serving subsystem: a Catalog of named relations with
// precomputed per-relation indexes shared read-only across queries, an
// Executor with a bounded worker pool, per-query deadlines and an LRU
// result cache, and an HTTP JSON front end (see Server). The library
// answers one TopK call at a time; this package is the layer that answers
// many at once.
package service

import (
	"fmt"
	"sort"
	"sync"
	"time"

	proxrank "repro"
)

// Entry is one catalog slot: the relation plus everything precomputed at
// registration time so that queries share it read-only — the R-tree for
// distance access, the score order for score access, and a generation
// number that makes cache keys self-invalidating across re-registration.
type Entry struct {
	rel      *proxrank.Relation
	rtree    *proxrank.RTreeIndex
	scoreOrd *proxrank.ScoreIndex
	gen      uint64
	loadedAt time.Time
}

// Relation returns the registered relation.
func (e *Entry) Relation() *proxrank.Relation { return e.rel }

// Generation returns the registration generation (monotone across the
// catalog; a name re-registered after eviction gets a fresh generation).
func (e *Entry) Generation() uint64 { return e.gen }

// RelationInfo is the catalog metadata served by GET /v1/relations.
type RelationInfo struct {
	Name     string    `json:"name"`
	Tuples   int       `json:"tuples"`
	Dim      int       `json:"dim"`
	MaxScore float64   `json:"maxScore"`
	LoadedAt time.Time `json:"loadedAt"`
}

// Catalog is a concurrency-safe registry of named relations. Registration
// precomputes the per-relation indexes once; lookups hand out immutable
// entries that any number of in-flight queries may share.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	nextGen uint64
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{entries: make(map[string]*Entry)}
}

// Register names a relation and precomputes its indexes. It fails if the
// name is empty, already taken (evict first to replace a relation), or
// differs from rel.Name — query responses and errors always cite
// rel.Name, so a diverging catalog name would surface names clients
// cannot resolve back.
func (c *Catalog) Register(name string, rel *proxrank.Relation) error {
	if name == "" {
		return apiErrorf(CodeBadRequest, "relation name must not be empty")
	}
	if rel == nil {
		return apiErrorf(CodeBadRequest, "relation %q: nil relation", name)
	}
	if rel.Name != name {
		return apiErrorf(CodeBadRequest, "catalog name %q differs from relation name %q", name, rel.Name)
	}
	// Cheap existence pre-check so a duplicate registration doesn't pay
	// for index construction; the locked re-check below settles races.
	c.mu.RLock()
	_, taken := c.entries[name]
	c.mu.RUnlock()
	if taken {
		return apiErrorf(CodeConflict, "relation %q is already registered", name)
	}
	// Index construction is the expensive part; do it outside the lock so
	// concurrent queries are not stalled behind a bulk load.
	e := &Entry{
		rel:      rel,
		rtree:    proxrank.NewRTreeIndex(rel),
		scoreOrd: proxrank.NewScoreIndex(rel),
		loadedAt: time.Now(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; ok {
		return apiErrorf(CodeConflict, "relation %q is already registered", name)
	}
	c.nextGen++
	e.gen = c.nextGen
	c.entries[name] = e
	return nil
}

// LoadCSVFile reads a relation from a CSV file and registers it under
// name. Pass maxScore 0 to infer σ_max from the data.
func (c *Catalog) LoadCSVFile(name, path string, maxScore float64) error {
	rel, err := proxrank.LoadRelationCSV(path, name, maxScore)
	if err != nil {
		return fmt.Errorf("catalog: load %q: %w", name, err)
	}
	return c.Register(name, rel)
}

// Get returns the entry for name, or a CodeNotFound error.
func (c *Catalog) Get(name string) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, apiErrorf(CodeNotFound, "relation %q is not registered", name)
	}
	return e, nil
}

// Resolve looks up every named relation, preserving order.
func (c *Catalog) Resolve(names []string) ([]*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Entry, len(names))
	for i, name := range names {
		e, ok := c.entries[name]
		if !ok {
			return nil, apiErrorf(CodeNotFound, "relation %q is not registered", name)
		}
		out[i] = e
	}
	return out, nil
}

// Evict removes a relation; it reports whether the name was registered.
// In-flight queries holding the entry finish against it unaffected.
func (c *Catalog) Evict(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[name]
	delete(c.entries, name)
	return ok
}

// Len returns the number of registered relations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Names returns the registered names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.entries))
	for name := range c.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Infos returns the metadata of every registered relation, sorted by name.
func (c *Catalog) Infos() []RelationInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]RelationInfo, 0, len(c.entries))
	for name, e := range c.entries {
		out = append(out, RelationInfo{
			Name:     name,
			Tuples:   e.rel.Len(),
			Dim:      e.rel.Dim(),
			MaxScore: e.rel.MaxScore,
			LoadedAt: e.loadedAt,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
