package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	proxrank "repro"
	"repro/internal/shardrpc"
)

// Entry is one catalog slot: the relation partitioned into one or more
// shards, each with its indexes precomputed at registration time so that
// queries share them read-only — per-shard R-trees for distance access,
// per-shard score orders for score access — and a generation number that
// makes cache keys self-invalidating across re-registration. A relation
// registered without a shard count holds exactly one shard, which the
// query path streams with zero merge overhead.
type Entry struct {
	sharded  *proxrank.ShardedRelation
	gen      uint64
	loadedAt time.Time
	// Remote entries (coordinator mode) carry no local tuples: stub is a
	// metadata-only relation and remote maps shards onto fleet peers.
	// Exactly one of sharded and remote is set.
	stub   *proxrank.Relation
	remote *shardrpc.RemoteRelation
}

// Relation returns the registered (parent) relation — a metadata-only
// stub for remote entries.
func (e *Entry) Relation() *proxrank.Relation {
	if e.remote != nil {
		return e.stub
	}
	return e.sharded.Relation()
}

// Sharded returns the partitioned form queries stream from, or nil for a
// remote entry (its shards live on other servers).
func (e *Entry) Sharded() *proxrank.ShardedRelation { return e.sharded }

// Remote returns the remote shard map, or nil for a local entry.
func (e *Entry) Remote() *shardrpc.RemoteRelation { return e.remote }

// IsRemote reports whether the entry's shards live on remote peers.
func (e *Entry) IsRemote() bool { return e.remote != nil }

// Shards returns the entry's shard count.
func (e *Entry) Shards() int {
	if e.remote != nil {
		return e.remote.Shards
	}
	return e.sharded.NumShards()
}

// Generation returns the registration generation (monotone across the
// catalog; a name re-registered after eviction gets a fresh generation).
func (e *Entry) Generation() uint64 { return e.gen }

// FileBacked reports whether the entry's tuples live in a memory-mapped
// relfile rather than on the Go heap.
func (e *Entry) FileBacked() bool {
	return e.sharded != nil && e.sharded.FileBacked()
}

// RelationInfo is the catalog metadata served by GET /v1/relations.
type RelationInfo struct {
	Name     string    `json:"name"`
	Tuples   int       `json:"tuples"`
	Dim      int       `json:"dim"`
	MaxScore float64   `json:"maxScore"`
	Shards   int       `json:"shards"`
	LoadedAt time.Time `json:"loadedAt"`
	// Remote marks a coordinator entry whose shards live on peers;
	// Owners then maps each peer address to the shard indices it serves.
	Remote bool             `json:"remote,omitempty"`
	Owners map[string][]int `json:"owners,omitempty"`
	// FileBacked marks an entry served from a memory-mapped relfile.
	FileBacked bool `json:"fileBacked,omitempty"`
}

// Catalog is a concurrency-safe registry of named relations. Registration
// precomputes the per-relation indexes once; lookups hand out immutable
// entries that any number of in-flight queries may share.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	nextGen uint64
	// building counts registrations currently partitioning and building
	// indexes — the readiness probe reports not-ready while it is
	// non-zero, so a server bulk-loading at startup holds traffic off
	// until its catalog is queryable.
	building atomic.Int64
	// buildObserver, when set, receives every registration's index-build
	// cost: shard count and the wall time spent partitioning and
	// building indexes. Wired to the metrics registry by NewExecutor.
	buildObserver func(shards int, d time.Duration)
	// relfileOpens counts successful LoadRelFile admissions; exported to
	// the metrics registry as relfile_open_total.
	relfileOpens atomic.Int64
}

// SetBuildObserver installs fn to observe index-build timings of later
// registrations. Call before the catalog is shared; a nil fn disables.
func (c *Catalog) SetBuildObserver(fn func(shards int, d time.Duration)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buildObserver = fn
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{entries: make(map[string]*Entry)}
}

// Register names a relation and precomputes its indexes as a single
// shard. It fails if the name is empty, already taken (evict first to
// replace a relation), or differs from rel.Name — query responses and
// errors always cite rel.Name, so a diverging catalog name would surface
// names clients cannot resolve back.
func (c *Catalog) Register(name string, rel *proxrank.Relation) error {
	return c.RegisterSharded(name, rel, 1, proxrank.HashPartition)
}

// RegisterSharded is Register with a shard count: the relation is
// partitioned under strategy and every shard's indexes are built in
// parallel, all outside the catalog lock. Queries over the entry stream
// a per-shard merge that answers byte-identically to a single-shard
// registration. A shard count of 0 asks admission to pick one from the
// relation's size (proxrank.AutoShardCount).
func (c *Catalog) RegisterSharded(name string, rel *proxrank.Relation, shards int, strategy proxrank.PartitionStrategy) error {
	return c.admit(name, rel, shards, strategy, false)
}

// Replace is RegisterSharded for a name that may already be taken: the
// new relation is built outside the lock and atomically swapped in with
// a fresh generation, so in-flight queries finish on the old entry while
// new queries (and cache keys) see the new one. With shards == 0 the
// shard count is re-derived from the new relation's size — a relation
// that grew since its last registration is re-sharded on the way in.
func (c *Catalog) Replace(name string, rel *proxrank.Relation, shards int, strategy proxrank.PartitionStrategy) error {
	return c.admit(name, rel, shards, strategy, true)
}

func (c *Catalog) admit(name string, rel *proxrank.Relation, shards int, strategy proxrank.PartitionStrategy, replace bool) error {
	if name == "" {
		return apiErrorf(CodeBadRequest, "relation name must not be empty")
	}
	if rel == nil {
		return apiErrorf(CodeBadRequest, "relation %q: nil relation", name)
	}
	if rel.Name != name {
		return apiErrorf(CodeBadRequest, "catalog name %q differs from relation name %q", name, rel.Name)
	}
	if shards == 0 {
		shards = proxrank.AutoShardCount(rel.Len())
	}
	// Cheap existence pre-check so a duplicate registration doesn't pay
	// for index construction; the locked re-check below settles races.
	if !replace {
		c.mu.RLock()
		_, taken := c.entries[name]
		c.mu.RUnlock()
		if taken {
			return apiErrorf(CodeConflict, "relation %q is already registered", name)
		}
	}
	// Partitioning and index construction are the expensive part; do them
	// outside the lock so concurrent queries are not stalled behind bulk
	// loads.
	c.building.Add(1)
	defer c.building.Add(-1)
	buildStart := time.Now()
	sharded, err := proxrank.NewShardedRelation(rel, shards, strategy)
	if err != nil {
		return apiErrorf(CodeBadRequest, "relation %q: %v", name, err)
	}
	c.observeBuild(sharded.NumShards(), time.Since(buildStart))
	return c.install(name, &Entry{sharded: sharded, loadedAt: time.Now()}, replace)
}

// observeBuild reports one index build to the registered observer.
func (c *Catalog) observeBuild(shards int, d time.Duration) {
	c.mu.RLock()
	observe := c.buildObserver
	c.mu.RUnlock()
	if observe != nil {
		observe(shards, d)
	}
}

// install links a fully built entry into the catalog under a fresh
// generation. Without replace it refuses a taken name (settling the race
// two concurrent registrations of one name can reach).
func (c *Catalog) install(name string, e *Entry, replace bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; ok && !replace {
		return apiErrorf(CodeConflict, "relation %q is already registered", name)
	}
	c.nextGen++
	e.gen = c.nextGen
	c.entries[name] = e
	return nil
}

// RegisterRemote names a relation whose shards live on fleet peers
// (coordinator mode). The entry carries only metadata — a stub relation
// built from what the peers agreed on during discovery — and the shard
// ownership map; the query path resolves its shards to RemoteSources.
func (c *Catalog) RegisterRemote(name string, rr *shardrpc.RemoteRelation) error {
	if name == "" {
		return apiErrorf(CodeBadRequest, "relation name must not be empty")
	}
	if rr == nil {
		return apiErrorf(CodeBadRequest, "relation %q: nil remote relation", name)
	}
	if rr.Name != name {
		return apiErrorf(CodeBadRequest, "catalog name %q differs from relation name %q", name, rr.Name)
	}
	stub, err := rr.Stub()
	if err != nil {
		return apiErrorf(CodeBadRequest, "relation %q: %v", name, err)
	}
	return c.install(name, &Entry{stub: stub, remote: rr, loadedAt: time.Now()}, false)
}

// LoadCSVFile reads a relation from a CSV file and registers it under
// name as a single shard. Pass maxScore 0 to infer σ_max from the data.
func (c *Catalog) LoadCSVFile(name, path string, maxScore float64) error {
	return c.LoadCSVFileSharded(name, path, maxScore, 1, proxrank.HashPartition)
}

// LoadCSVFileSharded reads a relation from a CSV file and registers it
// partitioned into shards.
func (c *Catalog) LoadCSVFileSharded(name, path string, maxScore float64, shards int, strategy proxrank.PartitionStrategy) error {
	rel, err := proxrank.LoadRelationCSV(path, name, maxScore)
	if err != nil {
		return fmt.Errorf("catalog: load %q: %w", name, err)
	}
	return c.RegisterSharded(name, rel, shards, strategy)
}

// LoadRelFile memory-maps a relfile-format relation (.prox, written by
// proxgen -format relfile) and registers it under name. No tuples are
// materialized: shard layout, indexes' inputs, and bounding metadata are
// served straight from the mapping, so admission is O(validation) rather
// than O(sort), and resident memory stays flat however large the file
// is. The mapping stays valid for the life of the process — eviction
// drops the catalog slot, never the pages in-flight queries may still
// touch.
func (c *Catalog) LoadRelFile(name, path string) error {
	if name == "" {
		return apiErrorf(CodeBadRequest, "relation name must not be empty")
	}
	c.mu.RLock()
	_, taken := c.entries[name]
	c.mu.RUnlock()
	if taken {
		return apiErrorf(CodeConflict, "relation %q is already registered", name)
	}
	c.building.Add(1)
	defer c.building.Add(-1)
	buildStart := time.Now()
	sharded, err := proxrank.LoadRelFile(path, name)
	if err != nil {
		return apiErrorf(CodeBadRequest, "relation %q: %v", name, err)
	}
	c.relfileOpens.Add(1)
	c.observeBuild(sharded.NumShards(), time.Since(buildStart))
	return c.install(name, &Entry{sharded: sharded, loadedAt: time.Now()}, false)
}

// RelFileOpens returns how many relfile mappings this catalog has opened
// (the relfile_open_total metric).
func (c *Catalog) RelFileOpens() int64 { return c.relfileOpens.Load() }

// Get returns the entry for name, or a CodeNotFound error.
func (c *Catalog) Get(name string) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, apiErrorf(CodeNotFound, "relation %q is not registered", name)
	}
	return e, nil
}

// Resolve looks up every named relation, preserving order.
func (c *Catalog) Resolve(names []string) ([]*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Entry, len(names))
	for i, name := range names {
		e, ok := c.entries[name]
		if !ok {
			return nil, apiErrorf(CodeNotFound, "relation %q is not registered", name)
		}
		out[i] = e
	}
	return out, nil
}

// Evict removes a relation; it reports whether the name was registered.
// In-flight queries holding the entry finish against it unaffected.
func (c *Catalog) Evict(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[name]
	delete(c.entries, name)
	return ok
}

// Building reports how many registrations are mid index build right
// now; /v1/readyz answers not-ready while it is positive.
func (c *Catalog) Building() int64 { return c.building.Load() }

// Len returns the number of registered relations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Names returns the registered names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.entries))
	for name := range c.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TotalShards returns the shard count summed over every registered
// relation.
func (c *Catalog) TotalShards() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, e := range c.entries {
		total += e.Shards()
	}
	return total
}

// info builds the wire metadata of one entry.
func info(name string, e *Entry) RelationInfo {
	rel := e.Relation()
	ri := RelationInfo{
		Name:       name,
		Tuples:     rel.Len(),
		Dim:        rel.Dim(),
		MaxScore:   rel.MaxScore,
		Shards:     e.Shards(),
		LoadedAt:   e.loadedAt,
		FileBacked: e.FileBacked(),
	}
	if rr := e.remote; rr != nil {
		ri.Remote = true
		ri.Owners = make(map[string][]int)
		for s := 0; s < rr.Shards; s++ {
			for _, p := range rr.Owners[s] {
				ri.Owners[p.Addr] = append(ri.Owners[p.Addr], s)
			}
		}
	}
	return ri
}

// Info returns the metadata of one registered relation.
func (c *Catalog) Info(name string) (RelationInfo, error) {
	e, err := c.Get(name)
	if err != nil {
		return RelationInfo{}, err
	}
	return info(name, e), nil
}

// Infos returns the metadata of every registered relation, sorted by name.
func (c *Catalog) Infos() []RelationInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]RelationInfo, 0, len(c.entries))
	for name, e := range c.entries {
		out = append(out, info(name, e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
