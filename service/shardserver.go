package service

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	proxrank "repro"
	"repro/api"
	"repro/internal/relation"
	"repro/internal/shardrpc"
)

// Ownership selects which shards of every catalog relation a shard
// server serves: with Replicas r (default 1), server Index of Count
// peers owns shard s exactly when Index is one of the r consecutive
// peers starting at s % Count — so every shard has r owners and the
// coordinator can fail over or hedge between them. Every peer loads the
// same data with the same -shards/-shard-strategy, so the global
// partition (and every tuple's parent ordinal) is agreed on by
// construction; ownership only decides who answers for each piece. The
// zero value (Count <= 1) owns everything.
type Ownership struct {
	Index int
	Count int
	// Replicas is how many consecutive peers serve each shard; 0 and 1
	// both mean unreplicated, Count means every peer serves everything.
	Replicas int
}

// ParseOwnership reads the "i/n" (unreplicated) or "i/n/r" (r-way
// replicated) form of the -own flag.
func ParseOwnership(s string) (Ownership, error) {
	if s == "" {
		return Ownership{}, nil
	}
	parts := strings.Split(s, "/")
	if len(parts) != 2 && len(parts) != 3 {
		return Ownership{}, fmt.Errorf("ownership %q: want the form i/n or i/n/r (e.g. 0/3 or 0/3/2)", s)
	}
	nums := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return Ownership{}, fmt.Errorf("ownership %q: want the form i/n or i/n/r (e.g. 0/3 or 0/3/2)", s)
		}
		nums[i] = v
	}
	o := Ownership{Index: nums[0], Count: nums[1], Replicas: 1}
	if len(nums) == 3 {
		o.Replicas = nums[2]
	}
	if o.Count < 1 || o.Index < 0 || o.Index >= o.Count {
		return Ownership{}, fmt.Errorf("ownership %q: want 0 <= i < n", s)
	}
	if o.Replicas < 1 || o.Replicas > o.Count {
		return Ownership{}, fmt.Errorf("ownership %q: want 1 <= r <= n", s)
	}
	return o, nil
}

// Owns reports whether shard s belongs to this server.
func (o Ownership) Owns(s int) bool {
	if o.Count <= 1 {
		return true
	}
	r := o.Replicas
	if r < 1 {
		r = 1
	}
	// The shard's primary is peer s % Count; replicas are the next r-1
	// peers in ring order.
	d := (o.Index - s%o.Count + o.Count) % o.Count
	return d < r
}

// ShardBackend serves a catalog's locally-loaded shards (and whole
// queries through an executor) over shardrpc. It is the service half of
// a shard server: shardrpc provides the transport, this type the
// semantics.
type ShardBackend struct {
	cat  *Catalog
	exec *Executor
	own  Ownership
	// name is the identity advertised in hello (the RPC listen address).
	name string
}

// NewShardBackend builds a backend over cat and exec serving the shards
// selected by own. Call SetName once the RPC listener's address is
// known.
func NewShardBackend(cat *Catalog, exec *Executor, own Ownership) *ShardBackend {
	return &ShardBackend{cat: cat, exec: exec, own: own}
}

// SetName records the identity advertised in hello responses.
func (b *ShardBackend) SetName(name string) { b.name = name }

// Hello implements shardrpc.Backend: every local relation's partition
// layout, restricted to the shards this server owns.
func (b *ShardBackend) Hello() shardrpc.HelloInfo {
	h := shardrpc.HelloInfo{Server: b.name}
	for _, name := range b.cat.Names() {
		e, err := b.cat.Get(name)
		if err != nil || e.IsRemote() {
			continue
		}
		rel := e.Relation()
		ri := shardrpc.RelationInfo{
			Name:     name,
			MaxScore: rel.MaxScore,
			Dim:      rel.Dim(),
			Tuples:   rel.Len(),
			Shards:   e.Shards(),
		}
		for s := 0; s < e.Shards(); s++ {
			if b.own.Owns(s) {
				ri.Owned = append(ri.Owned, shardrpc.OwnedShard{
					Index:  s,
					Bounds: e.Sharded().ShardBounds(s),
				})
			}
		}
		h.Relations = append(h.Relations, ri)
	}
	return h
}

// OpenShard implements shardrpc.Backend: the canonical keyed stream of
// one owned shard.
func (b *ShardBackend) OpenShard(relName string, shard int, access string, query []float64) (relation.KeyedSource, error) {
	e, err := b.cat.Get(relName)
	if err != nil {
		return nil, err
	}
	if e.IsRemote() {
		return nil, api.Errorf(api.CodeBadRequest, "relation %q is remote here; shard servers serve local data only", relName)
	}
	if shard < 0 || shard >= e.Shards() {
		return nil, api.Errorf(api.CodeNotFound, "relation %q has no shard %d", relName, shard)
	}
	if !b.own.Owns(shard) {
		return nil, api.Errorf(api.CodeNotFound, "shard %d of relation %q is not served here", shard, relName)
	}
	var kind proxrank.AccessKind
	switch access {
	case api.AccessScore:
		kind = proxrank.ScoreAccess
	case api.AccessDistance:
		kind = proxrank.DistanceAccess
		if len(query) != e.Relation().Dim() {
			return nil, api.Errorf(api.CodeBadRequest, "relation %q has dim %d, query has dim %d", relName, e.Relation().Dim(), len(query))
		}
	default:
		return nil, api.Errorf(api.CodeBadRequest, "unknown access kind %q", access)
	}
	src, err := e.Sharded().ShardSource(shard, kind, query, nil, true)
	if err != nil {
		return nil, api.Errorf(api.CodeInternal, "open shard %d of %q: %v", shard, relName, err)
	}
	ks, ok := src.(relation.KeyedSource)
	if !ok {
		return nil, api.Errorf(api.CodeInternal, "shard %d of %q: stream %T carries no merge keys", shard, relName, src)
	}
	return ks, nil
}

// Query implements shardrpc.Backend: the whole request runs through the
// executor's streaming path and the finished event sequence is returned
// verbatim.
func (b *ShardBackend) Query(ctx context.Context, req *api.Request) ([]api.ResultEvent, error) {
	var events []api.ResultEvent
	err := b.exec.ExecuteStream(ctx, req, func(ev api.ResultEvent) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return events, nil
}

var _ shardrpc.Backend = (*ShardBackend)(nil)
