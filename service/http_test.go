package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	proxrank "repro"
)

func testServer(t testing.TB) (*httptest.Server, []string, *Executor) {
	t.Helper()
	cat, names := testSetup(t, 2, 60, 2)
	exec := NewExecutor(cat, Config{Workers: 4, CacheSize: 64, DefaultTimeout: 30 * time.Second})
	srv := httptest.NewServer(NewServer(cat, exec).Handler())
	t.Cleanup(srv.Close)
	return srv, names, exec
}

// postTopK sends one query; it returns errors rather than failing the
// test so it is safe to call from worker goroutines.
func postTopK(url string, req *QueryRequest) (*http.Response, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(url+"/v1/topk", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

// TestHTTPConcurrentTopK serves 48 concurrent queries (16 distinct, each
// asked three times) and checks every response; run under -race this is
// the acceptance test for the multi-tenant serving path.
func TestHTTPConcurrentTopK(t *testing.T) {
	srv, names, exec := testServer(t)

	const distinct, repeats = 16, 3
	var wg sync.WaitGroup
	errs := make(chan error, distinct*repeats)
	for rep := 0; rep < repeats; rep++ {
		for i := 0; i < distinct; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				req := &QueryRequest{
					Query:     []float64{float64(i) * 0.05, -0.1},
					Relations: names,
					K:         4,
				}
				resp, data, err := postTopK(srv.URL, req)
				if err != nil {
					errs <- fmt.Errorf("query %d: %v", i, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query %d: status %d: %s", i, resp.StatusCode, data)
					return
				}
				var out QueryResponse
				if err := json.Unmarshal(data, &out); err != nil {
					errs <- fmt.Errorf("query %d: bad body: %v", i, err)
					return
				}
				if len(out.Results) != 4 {
					errs <- fmt.Errorf("query %d: %d results, want 4", i, len(out.Results))
					return
				}
				for j := 1; j < len(out.Results); j++ {
					if out.Results[j].Score > out.Results[j-1].Score+1e-9 {
						errs <- fmt.Errorf("query %d: results out of order", i)
						return
					}
				}
				if out.Cost.SumDepths <= 0 && !out.Cached {
					errs <- fmt.Errorf("query %d: missing cost stats: %+v", i, out.Cost)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := exec.Stats()
	if st.Queries != distinct*repeats {
		t.Fatalf("Queries = %d, want %d", st.Queries, distinct*repeats)
	}
	// Each distinct query runs the engine at most... exactly once? No:
	// identical queries racing may all miss the cache before the first
	// finishes; the single-flight group then serves them from the
	// leader's run (Coalesced), and a repeat arriving after the store is
	// a cache hit. How the repeats split between the two is pure timing;
	// the hard guarantee is the conservation law:
	if st.EngineRuns+st.CacheHits+st.Coalesced != st.Queries {
		t.Fatalf("EngineRuns(%d) + CacheHits(%d) + Coalesced(%d) != Queries(%d)",
			st.EngineRuns, st.CacheHits, st.Coalesced, st.Queries)
	}
	if st.EngineRuns < int64(distinct) {
		t.Fatalf("EngineRuns = %d, want at least one per distinct query (%d)", st.EngineRuns, distinct)
	}
	if st.Completed != st.EngineRuns {
		t.Fatalf("Completed = %d, EngineRuns = %d", st.Completed, st.EngineRuns)
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after drain", st.InFlight)
	}
}

// TestHTTPEndpoints covers the read-only endpoints and the structured
// error body.
func TestHTTPEndpoints(t *testing.T) {
	srv, names, _ := testServer(t)

	get := func(path string) (int, map[string]any) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, m
	}

	if code, m := get("/v1/healthz"); code != 200 || m["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, m)
	}
	if code, m := get("/v1/relations"); code != 200 {
		t.Fatalf("relations: %d %v", code, m)
	} else if rels := m["relations"].([]any); len(rels) != 2 {
		t.Fatalf("relations: %v", m)
	}
	if code, m := get("/v1/stats"); code != 200 {
		t.Fatalf("stats: %d %v", code, m)
	} else if _, ok := m["cacheHits"]; !ok {
		t.Fatalf("stats body missing counters: %v", m)
	}

	// Unknown relation → 404 with a structured body.
	resp, data, err := postTopK(srv.URL, &QueryRequest{
		Query: []float64{0, 0}, Relations: []string{names[0], "ghost"}, K: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown relation: status %d: %s", resp.StatusCode, data)
	}
	var apiBody struct {
		Error *APIError `json:"error"`
	}
	if err := json.Unmarshal(data, &apiBody); err != nil || apiBody.Error == nil {
		t.Fatalf("unstructured error body: %s", data)
	}
	if apiBody.Error.Code != CodeNotFound {
		t.Fatalf("error code %q, want %q", apiBody.Error.Code, CodeNotFound)
	}

	// Malformed JSON → 400.
	r2, err := http.Post(srv.URL+"/v1/topk", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", r2.StatusCode)
	}

	// Unknown field → 400 (catches client typos).
	r3, err := http.Post(srv.URL+"/v1/topk", "application/json",
		strings.NewReader(`{"query":[0,0],"relations":["A","B"],"k":1,"kay":2}`))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", r3.StatusCode)
	}

	// Oversized body → 400 naming the limit, not a confusing JSON error.
	big := `{"query":[0,0],"relations":["A","B"],"k":1,"algorithm":"` +
		strings.Repeat("x", maxRequestBody) + `"}`
	r5, err := http.Post(srv.URL+"/v1/topk", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	bodyBytes, _ := io.ReadAll(r5.Body)
	r5.Body.Close()
	if r5.StatusCode != http.StatusBadRequest || !strings.Contains(string(bodyBytes), "exceeds") {
		t.Fatalf("oversized body: status %d: %.200s", r5.StatusCode, bodyBytes)
	}

	// Wrong method → 405 from the router.
	r4, err := http.Get(srv.URL + "/v1/topk")
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/topk: status %d, want 405", r4.StatusCode)
	}
}

// TestHTTPExhaustedCrossProduct: K beyond the whole cross product
// exhausts every source, driving the final bound to −Inf — which is not
// JSON-representable. The response must still be valid JSON (threshold
// omitted), not a silent empty 200.
func TestHTTPExhaustedCrossProduct(t *testing.T) {
	cat := NewCatalog()
	for _, name := range []string{"tinyA", "tinyB"} {
		if err := cat.Register(name, testRelation(t, name, 77, 5, 2)); err != nil {
			t.Fatal(err)
		}
	}
	exec := NewExecutor(cat, Config{Workers: 1})
	srv := httptest.NewServer(NewServer(cat, exec).Handler())
	defer srv.Close()

	req := &QueryRequest{Query: []float64{0, 0}, Relations: []string{"tinyA", "tinyB"}, K: 100}
	for round := 0; round < 2; round++ { // second round exercises the cached copy
		resp, data, err := postTopK(srv.URL, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || len(data) == 0 {
			t.Fatalf("round %d: status %d, %d body bytes", round, resp.StatusCode, len(data))
		}
		var out QueryResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("round %d: invalid JSON: %v: %.200s", round, err, data)
		}
		if len(out.Results) != 25 {
			t.Fatalf("round %d: %d results, want the full 5×5 cross product", round, len(out.Results))
		}
		if out.Cost.Threshold != nil {
			t.Fatalf("round %d: non-finite threshold leaked: %v", round, *out.Cost.Threshold)
		}
	}
}

// TestHTTPTimeoutStatus: an unmeetable per-query deadline surfaces as
// 504 with the timeout code.
func TestHTTPTimeoutStatus(t *testing.T) {
	cat, names := testSetup(t, 3, 500, 3)
	exec := NewExecutor(cat, Config{Workers: 1, CacheSize: -1})
	exec.wrapSource = func(s proxrank.Source) proxrank.Source {
		return slowSource{Source: s, delay: 200 * time.Microsecond}
	}
	srv := httptest.NewServer(NewServer(cat, exec).Handler())
	defer srv.Close()

	probe := &QueryRequest{Query: []float64{0, 0, 0}, Relations: names, K: 100, Algorithm: "cbrr"}
	resp, data, err := postTopK(srv.URL, probe)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("probe failed: %d: %s", resp.StatusCode, data)
	}
	var probeOut QueryResponse
	if err := json.Unmarshal(data, &probeOut); err != nil {
		t.Fatal(err)
	}
	if probeOut.Cost.ElapsedMicros < 2000 {
		t.Skipf("full run took only %dµs; too fast to interrupt reliably", probeOut.Cost.ElapsedMicros)
	}

	probe.TimeoutMillis = 1
	resp, data, err = postTopK(srv.URL, probe)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, data)
	}
	var body struct {
		Error *APIError `json:"error"`
	}
	if err := json.Unmarshal(data, &body); err != nil || body.Error == nil || body.Error.Code != CodeTimeout {
		t.Fatalf("timeout body: %s", data)
	}
}
