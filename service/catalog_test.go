package service

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	proxrank "repro"
)

// testRelation builds a deterministic random relation.
func testRelation(t testing.TB, name string, seed int64, size, dim int) *proxrank.Relation {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tuples := make([]proxrank.Tuple, size)
	for i := range tuples {
		v := make([]float64, dim)
		for c := range v {
			v[c] = r.NormFloat64()
		}
		tuples[i] = proxrank.Tuple{
			ID:    name + "-" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)),
			Score: 0.05 + 0.95*r.Float64(),
			Vec:   v,
		}
	}
	rel, err := proxrank.NewRelation(name, 1.0, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func codeOf(err error) ErrorCode {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// TestCatalogRegisterEvict walks the register/evict state machine as a
// table of steps over one shared catalog.
func TestCatalogRegisterEvict(t *testing.T) {
	rel := testRelation(t, "hotels", 1, 20, 2)
	rel2 := testRelation(t, "hotels", 2, 15, 2)
	c := NewCatalog()

	steps := []struct {
		name     string
		op       func() error
		wantCode ErrorCode // "" means success
	}{
		{"register empty name", func() error { return c.Register("", rel) }, CodeBadRequest},
		{"register nil relation", func() error { return c.Register("hotels", nil) }, CodeBadRequest},
		{"register name mismatch", func() error { return c.Register("lodging", rel) }, CodeBadRequest},
		{"register hotels", func() error { return c.Register("hotels", rel) }, ""},
		{"register duplicate", func() error { return c.Register("hotels", rel2) }, CodeConflict},
		{"get hotels", func() error { _, err := c.Get("hotels"); return err }, ""},
		{"get unknown", func() error { _, err := c.Get("nope"); return err }, CodeNotFound},
		{"resolve pair fails on missing", func() error { _, err := c.Resolve([]string{"hotels", "nope"}); return err }, CodeNotFound},
		{"evict hotels", func() error {
			if !c.Evict("hotels") {
				return errors.New("evict reported not-registered")
			}
			return nil
		}, ""},
		{"get after evict", func() error { _, err := c.Get("hotels"); return err }, CodeNotFound},
		{"evict again is false", func() error {
			if c.Evict("hotels") {
				return errors.New("second evict reported registered")
			}
			return nil
		}, ""},
		{"re-register after evict", func() error { return c.Register("hotels", rel2) }, ""},
	}
	for _, step := range steps {
		err := step.op()
		if step.wantCode == "" && err != nil {
			t.Fatalf("%s: unexpected error %v", step.name, err)
		}
		if step.wantCode != "" && codeOf(err) != step.wantCode {
			t.Fatalf("%s: error %v, want code %s", step.name, err, step.wantCode)
		}
	}
	if got := c.Names(); len(got) != 1 || got[0] != "hotels" {
		t.Fatalf("Names() = %v, want [hotels]", got)
	}
}

// TestCatalogGenerationBump: re-registering a name after eviction must
// yield a fresh generation, so stale cache entries can never match.
func TestCatalogGenerationBump(t *testing.T) {
	c := NewCatalog()
	rel := testRelation(t, "r", 3, 10, 2)
	if err := c.Register("r", rel); err != nil {
		t.Fatal(err)
	}
	e1, err := c.Get("r")
	if err != nil {
		t.Fatal(err)
	}
	c.Evict("r")
	if err := c.Register("r", rel); err != nil {
		t.Fatal(err)
	}
	e2, err := c.Get("r")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Generation() <= e1.Generation() {
		t.Fatalf("generation did not advance: %d then %d", e1.Generation(), e2.Generation())
	}
}

// TestCatalogLoadCSVFile registers a relation from disk and infers
// σ_max.
func TestCatalogLoadCSVFile(t *testing.T) {
	rel := testRelation(t, "disk", 4, 12, 3)
	path := filepath.Join(t.TempDir(), "disk.csv")
	if err := proxrank.SaveRelationCSV(path, rel); err != nil {
		t.Fatal(err)
	}
	c := NewCatalog()
	if err := c.LoadCSVFile("disk", path, 0); err != nil {
		t.Fatal(err)
	}
	e, err := c.Get("disk")
	if err != nil {
		t.Fatal(err)
	}
	if e.Relation().Len() != rel.Len() || e.Relation().Dim() != rel.Dim() {
		t.Fatalf("loaded %d tuples dim %d, want %d dim %d",
			e.Relation().Len(), e.Relation().Dim(), rel.Len(), rel.Dim())
	}
	if err := c.LoadCSVFile("missing", filepath.Join(t.TempDir(), "nope.csv"), 0); err == nil {
		t.Fatal("LoadCSVFile succeeded on a missing file")
	}
	infos := c.Infos()
	if len(infos) != 1 || infos[0].Name != "disk" || infos[0].Tuples != rel.Len() {
		t.Fatalf("Infos() = %+v", infos)
	}
}
