package service

import (
	"strings"
	"sync/atomic"
	"time"

	proxrank "repro"
	"repro/internal/obs"
	"repro/internal/shardrpc"
)

// Metric label values for the query-latency and TTFE histograms.
const (
	labelModeBatch  = "batch"
	labelModeStream = "stream"
	// labelCacheNone marks a request that ended before the cache lookup
	// (validation failure, unknown relation); the cache states a request
	// can actually reach are the api.Cache* vocabulary.
	labelCacheNone = "none"
	// labelOutcomeOK marks a request answered without error.
	labelOutcomeOK = "ok"
)

// metrics is the executor's instrument set over one obs.Registry.
//
// Naming scheme (documented in ARCHITECTURE.md): every family is
// prefixed proxrank_, counters end in _total, durations are _seconds
// histograms, and each family belongs to one layer —
// proxrank_query/proxrank_stream (executor), proxrank_engine (core, fed
// through Stats and the CollectTimings/Tracer plumbing),
// proxrank_cache/proxrank_workers (serving resources), and
// proxrank_catalog (catalog). Counters that mirror the legacy /v1/stats
// snapshot are func-backed readers of the same executor atomics, so the
// two surfaces cannot drift apart.
type metrics struct {
	reg *obs.Registry

	// duration: per-request wall time by mode/algorithm/cache/outcome.
	// ttfe: time to first delivered result (== duration for batch).
	duration *obs.HistogramVec
	ttfe     *obs.HistogramVec
	// interResult: delay between consecutive certified results of one
	// streamed run — the ranked-enumeration "delay" metric.
	interResult *obs.HistogramVec
	// pull: per-pull step duration, fed only by traced runs (the
	// engine's Tracer plumbing); cheap runs do not pay the timer.
	pull *obs.Histogram
	// sumDepths/pruneRatio: per-run engine cost distributions.
	sumDepths  *obs.Histogram
	pruneRatio *obs.Histogram
	// streamLag/streamBlocked: broker send pacing — max subscriber lag
	// per publish, and each blocked-publish wait.
	streamLag     *obs.Histogram
	streamBlocked *obs.Histogram
	// indexBuild: catalog registration index-build wall time.
	indexBuild *obs.Histogram
}

// ratioBuckets covers [0,1] quantities like the pruning ratio.
var ratioBuckets = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}

// newMetrics registers every executor-owned family on reg and wires the
// func-backed families to the executor's and broker's live counters.
func newMetrics(reg *obs.Registry, x *Executor) *metrics {
	m := &metrics{reg: reg}

	durBuckets := obs.DurationBuckets()
	m.duration = reg.HistogramVec("proxrank_query_duration_seconds",
		"Per-request wall time.", durBuckets, "mode", "algorithm", "cache", "outcome")
	m.ttfe = reg.HistogramVec("proxrank_query_ttfe_seconds",
		"Time to first delivered result (equals total duration for batch requests).",
		durBuckets, "mode", "algorithm", "cache")
	m.interResult = reg.HistogramVec("proxrank_stream_interresult_seconds",
		"Delay between consecutive certified results within one run.",
		obs.ExpBuckets(10e-6, 4, 12), "algorithm")
	m.pull = reg.Histogram("proxrank_engine_pull_duration_seconds",
		"Per-pull engine step time; observed only for traced runs.",
		obs.ExpBuckets(1e-6, 4, 12))
	m.sumDepths = reg.Histogram("proxrank_engine_sum_depths",
		"Total access depth (the paper's sumDepths) per engine run.",
		obs.ExpBuckets(4, 2, 16))
	m.pruneRatio = reg.Histogram("proxrank_engine_prune_ratio",
		"Fraction of formed combinations cut by score-floor pruning, per engine run.",
		ratioBuckets)
	m.streamLag = reg.Histogram("proxrank_stream_lag_events",
		"Maximum subscriber lag (events) observed at each publish.",
		obs.ExpBuckets(1, 2, 10))
	m.streamBlocked = reg.Histogram("proxrank_stream_blocked_seconds",
		"Engine publish waits on block-policy stream laggards.",
		obs.ExpBuckets(1e-4, 4, 10))
	m.indexBuild = reg.Histogram("proxrank_catalog_index_build_seconds",
		"Partitioning plus index-build wall time per relation registration.",
		obs.ExpBuckets(1e-4, 4, 12))

	// Func-backed mirrors of the /v1/stats snapshot: one source of
	// truth, two surfaces.
	c := func(name, help string, a *atomic.Int64) {
		reg.CounterFunc(name, help, func() float64 { return float64(a.Load()) })
	}
	c("proxrank_queries_total", "Requests accepted by the executor (batch + stream).", &x.queries)
	c("proxrank_queries_streamed_total", "Requests that used the streaming path.", &x.streamed)
	c("proxrank_queries_completed_total", "Engine runs that finished and were folded into the totals.", &x.completed)
	c("proxrank_cache_hits_total", "Result-cache hits.", &x.cacheHits)
	c("proxrank_cache_misses_total", "Result-cache misses.", &x.cacheMisses)
	c("proxrank_coalesced_total", "Requests answered by another caller's in-flight run.", &x.coalesced)
	c("proxrank_canceled_total", "Requests abandoned by their caller or deadline.", &x.canceled)
	c("proxrank_bad_requests_total", "Requests rejected by validation or resolution.", &x.badRequests)
	c("proxrank_failed_total", "Requests that failed server-side.", &x.failed)
	c("proxrank_rejected_total", "Requests shed because no worker slot freed before the deadline or the admission queue was full.", &x.rejected)
	c("proxrank_degraded_queries_total", "Queries that completed without some shard whose every replica was unreachable.", &x.degraded)
	c("proxrank_engine_runs_total", "Engine executions started.", &x.engineRuns)
	c("proxrank_streams_brokered_total", "Streaming leaders whose delivery went through the broker.", &x.streamsBrokered)
	c("proxrank_stream_midrun_attaches_total", "Coalesced stream followers that attached to a live topic mid-run.", &x.midRunAttaches)
	c("proxrank_shards_pruned_total", "Remote shards whose bound proved they could not contribute, so their streams were never opened.", &x.shardsPruned)
	c("proxrank_remote_streams_opened_total", "Remote shard streams a query actually pulled from.", &x.remoteOpened)
	c("proxrank_engine_sum_depths_total", "Cumulative access depth across completed runs.", &x.totalSumDepths)
	c("proxrank_engine_combinations_total", "Cumulative combinations formed across completed runs.", &x.totalCombinations)
	c("proxrank_engine_bound_updates_total", "Cumulative stopping-threshold recomputations across completed runs.", &x.totalBoundUpdates)
	c("proxrank_spilled_combinations_total", "Cumulative combinations BufferSpill sessions moved out of the ranked heap.", &x.totalSpilled)
	c("proxrank_spill_bytes_total", "Cumulative bytes written to file spill-tier segments across completed runs.", &x.totalSpilledBytes)
	reg.CounterFunc("proxrank_engine_seconds_total",
		"Cumulative engine wall time across completed runs.",
		func() float64 { return float64(x.totalEngineMicros.Load()) / 1e6 })

	reg.GaugeFunc("proxrank_in_flight", "Engine executions holding a worker slot right now.",
		func() float64 { return float64(x.inFlight.Load()) })
	reg.GaugeFunc("proxrank_queued", "Queries waiting for a worker slot right now (shed past Config.AdmissionQueue).",
		func() float64 { return float64(x.queued.Load()) })
	reg.GaugeFunc("proxrank_workers", "Configured worker-pool size.",
		func() float64 { return float64(x.cfg.Workers) })
	reg.GaugeFunc("proxrank_worker_saturation", "In-flight executions over pool size (1 = saturated).",
		func() float64 { return float64(x.inFlight.Load()) / float64(x.cfg.Workers) })
	reg.GaugeFunc("proxrank_cache_entries", "Responses currently held by the result cache.",
		func() float64 { return float64(x.cache.len()) })
	reg.GaugeFunc("proxrank_process_resident_bytes",
		"Resident set size of this process (0 where /proc is unavailable). With mmap-backed relations this stays flat however large the catalog's files are.",
		func() float64 { return float64(residentBytes()) })

	// Broker delivery: the same Instruments the stats snapshot reads.
	ins := x.bins
	reg.GaugeFunc("proxrank_stream_subscribers", "Currently attached stream subscribers.",
		func() float64 { return float64(ins.Subscribers.Load()) })
	reg.GaugeFunc("proxrank_stream_peak_lag", "Largest subscriber lag (events) ever observed.",
		func() float64 { return float64(ins.PeakLag.Load()) })
	reg.CounterFunc("proxrank_stream_blocked_seconds_total",
		"Cumulative engine publish time spent parked on block-policy laggards.",
		func() float64 { return float64(ins.BlockedNanos.Load()) / 1e9 })
	dropped := reg.CounterFuncVec("proxrank_stream_dropped_total",
		"Stream subscribers disconnected by the overflow policy.", "policy")
	dropped.Bind(func() float64 { return float64(ins.DroppedBlock.Load()) }, "block")
	dropped.Bind(func() float64 { return float64(ins.DroppedDrop.Load()) }, "drop")

	return m
}

// registerCatalog adds the catalog-layer gauges and wires the
// index-build observer. Separate from newMetrics only because it
// touches the catalog, not the executor.
func (m *metrics) registerCatalog(cat *Catalog) {
	m.reg.GaugeFunc("proxrank_catalog_relations", "Registered relations.",
		func() float64 { return float64(cat.Len()) })
	m.reg.GaugeFunc("proxrank_catalog_shards", "Shards summed over all registered relations.",
		func() float64 { return float64(cat.TotalShards()) })
	m.reg.CounterFunc("relfile_open_total", "Relfile mappings opened by the catalog (LoadRelFile admissions).",
		func() float64 { return float64(cat.RelFileOpens()) })
	cat.SetBuildObserver(func(_ int, d time.Duration) {
		m.indexBuild.ObserveDuration(d.Seconds())
	})
}

// registerFleet adds the coordinator's per-peer RPC families: a
// round-trip latency histogram labeled by peer address and func-backed
// mirrors of each peer's pull/retry/reconnect counters. Called once, at
// coordinator startup, before the fleet serves queries.
func (m *metrics) registerFleet(fleet *shardrpc.Fleet) {
	pull := m.reg.HistogramVec("proxrank_rpc_pull_duration_seconds",
		"Shardrpc request/response round-trip time, by peer.",
		obs.DurationBuckets(), "peer")
	pulls := m.reg.CounterFuncVec("proxrank_rpc_pulls_total",
		"Shardrpc exchanges attempted, by peer.", "peer")
	retries := m.reg.CounterFuncVec("proxrank_rpc_retries_total",
		"Shardrpc exchanges re-issued after a transport failure, by peer.", "peer")
	reconnects := m.reg.CounterFuncVec("proxrank_rpc_reconnects_total",
		"Shardrpc dials that were not a peer's first contact, by peer.", "peer")
	hedges := m.reg.CounterFuncVec("proxrank_hedges_total",
		"Hedged pulls issued, by peer (the replica the hedge was sent to).", "peer")
	hedgeWins := m.reg.CounterFuncVec("proxrank_hedge_wins_total",
		"Hedged pulls that answered before the primary, by peer.", "peer")
	breakerOpens := m.reg.CounterFuncVec("proxrank_breaker_opens_total",
		"Circuit-breaker transitions into the open state, by peer.", "peer")
	breakerState := m.reg.GaugeFuncVec("proxrank_breaker_state",
		"Circuit-breaker position by peer: 0 closed, 1 open, 2 half-open.", "peer")
	peers := fleet.Peers()
	m.reg.GaugeFunc("proxrank_fleet_peers", "Configured shard-server peers.",
		func() float64 { return float64(len(peers)) })
	for _, p := range peers {
		p := p
		h := pull.With(p.Addr)
		p.ObservePull = func(d time.Duration, _ error) { h.ObserveDuration(d.Seconds()) }
		pulls.Bind(func() float64 { return float64(p.Pulls.Load()) }, p.Addr)
		retries.Bind(func() float64 { return float64(p.Retries.Load()) }, p.Addr)
		reconnects.Bind(func() float64 { return float64(p.Reconnects.Load()) }, p.Addr)
		hedges.Bind(func() float64 { return float64(p.Hedges.Load()) }, p.Addr)
		hedgeWins.Bind(func() float64 { return float64(p.HedgeWins.Load()) }, p.Addr)
		breakerOpens.Bind(func() float64 { return float64(p.Breaker().Opens()) }, p.Addr)
		breakerState.Bind(func() float64 { return float64(p.Breaker().State()) }, p.Addr)
	}
}

// observeLag and observeBlocked are the broker's histogram hooks;
// observePull is the traced-run engine hook.
func (m *metrics) observeLag(lag int)             { m.streamLag.Observe(float64(lag)) }
func (m *metrics) observeBlocked(d time.Duration) { m.streamBlocked.ObserveDuration(d.Seconds()) }
func (m *metrics) observePull(d time.Duration)    { m.pull.ObserveDuration(d.Seconds()) }

// newGapObserver returns a closure one streamed run calls per emitted
// result; from the second call on it observes the delay since the
// previous one. The label matches the request vocabulary ("tbpa", ...).
func (m *metrics) newGapObserver(algo proxrank.Algorithm) func() {
	h := m.interResult.With(strings.ToLower(algo.ShortName()))
	var last time.Time
	return func() {
		now := time.Now()
		if !last.IsZero() {
			h.ObserveDuration(now.Sub(last).Seconds())
		}
		last = now
	}
}
