package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	proxrank "repro"
)

// tieTestRelation builds a relation with engineered score and distance
// ties so shard-merge determinism is exercised end to end.
func tieTestRelation(t testing.TB, name string, seed int64, size, dim int) *proxrank.Relation {
	t.Helper()
	rel := testRelation(t, name, seed, size, dim)
	tuples := rel.Tuples()
	for i := range tuples {
		tuples[i].ID = fmt.Sprintf("%s-%03d", name, i)
		tuples[i].Score = 0.25 + 0.25*float64((i+int(seed))%3)
		for c := range tuples[i].Vec {
			tuples[i].Vec[c] = float64((i*(c+3) + int(seed)) % 7)
		}
	}
	out, err := proxrank.NewRelation(name, 1.0, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestExecutorShardedParity is the service-layer acceptance test: a
// catalog serving ≥4-shard relations answers byte-identically (same
// tuples, same scores, same order, same depths) to one serving the same
// relations unsharded, for both access paths.
func TestExecutorShardedParity(t *testing.T) {
	relA := tieTestRelation(t, "A", 1, 120, 2)
	relB := tieTestRelation(t, "B", 2, 140, 2)

	plain := NewCatalog()
	sharded := NewCatalog()
	for _, rel := range []*proxrank.Relation{relA, relB} {
		if err := plain.Register(rel.Name, rel); err != nil {
			t.Fatal(err)
		}
	}
	if err := sharded.RegisterSharded(relA.Name, relA, 4, proxrank.HashPartition); err != nil {
		t.Fatal(err)
	}
	if err := sharded.RegisterSharded(relB.Name, relB, 6, proxrank.GridPartition); err != nil {
		t.Fatal(err)
	}
	if e, _ := sharded.Get("A"); e.Shards() < 4 {
		t.Fatalf("relation A has %d shards, want 4", e.Shards())
	}

	xPlain := NewExecutor(plain, Config{Workers: 4, CacheSize: -1})
	xSharded := NewExecutor(sharded, Config{Workers: 4, CacheSize: -1})
	for _, access := range []string{"distance", "score"} {
		req := &QueryRequest{
			Query:     []float64{2.5, 3.5},
			Relations: []string{"A", "B"},
			K:         10,
			Access:    access,
		}
		want, err := xPlain.Execute(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := xSharded.Execute(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Results, want.Results) {
			t.Fatalf("%s: sharded results diverge\n got: %+v\nwant: %+v", access, got.Results, want.Results)
		}
		if got.Cost.SumDepths != want.Cost.SumDepths || !reflect.DeepEqual(got.Cost.Depths, want.Cost.Depths) {
			t.Fatalf("%s: sharded depths %v (%d), unsharded %v (%d)",
				access, got.Cost.Depths, got.Cost.SumDepths, want.Cost.Depths, want.Cost.SumDepths)
		}
	}
}

// TestExecutorSingleFlight launches many identical queries against a
// cold cache at once; the single-flight layer must collapse them into
// one engine run, with every caller receiving the same results.
func TestExecutorSingleFlight(t *testing.T) {
	cat, names := testSetup(t, 2, 4000, 3)
	x := NewExecutor(cat, Config{Workers: 8, CacheSize: 16})
	req := &QueryRequest{
		Query:     []float64{0.05, -0.1, 0.2},
		Relations: names,
		K:         50,
	}
	const callers = 12
	responses := make([]*QueryResponse, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			responses[i], errs[i] = x.Execute(context.Background(), req)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(responses[i].Results, responses[0].Results) {
			t.Fatalf("caller %d saw different results", i)
		}
	}
	st := x.Stats()
	if st.EngineRuns != 1 {
		t.Fatalf("EngineRuns = %d, want 1 (identical concurrent misses must coalesce); stats %+v", st.EngineRuns, st)
	}
	if st.Coalesced+st.CacheHits != callers-1 {
		t.Fatalf("Coalesced+CacheHits = %d, want %d; stats %+v", st.Coalesced+st.CacheHits, callers-1, st)
	}
}

// TestExecutorFollowerDeadline: a coalesced follower's own TimeoutMillis
// must bound its wait — it may not inherit the leader's (longer) budget.
func TestExecutorFollowerDeadline(t *testing.T) {
	cat, names := testSetup(t, 2, 10000, 3)
	x := NewExecutor(cat, Config{Workers: 4, CacheSize: 16})
	req := &QueryRequest{
		Query:     []float64{0.02, 0.03, -0.04},
		Relations: names,
		K:         200,
		Algorithm: "cbrr", // deepest-reading algorithm: a long leader run
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = x.Execute(context.Background(), req)
	}()
	time.Sleep(10 * time.Millisecond) // let the leader take the flight
	follower := *req
	follower.TimeoutMillis = 20
	start := time.Now()
	_, err := x.Execute(context.Background(), &follower)
	elapsed := time.Since(start)
	wg.Wait()
	if err == nil {
		// The leader finished inside the follower's budget; the behavior
		// under test never arose on this host.
		t.Skip("leader run finished too fast to outlive the follower deadline")
	}
	if code := codeOf(err); code != CodeTimeout {
		t.Fatalf("follower err %v (code %q), want timeout", err, code)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("follower with a 20ms deadline returned after %v", elapsed)
	}
}

// TestExecutorSingleFlightLeaderFailure: when the leader dies on its own
// deadline, waiting followers must not inherit the failure blindly — one
// retries as the next leader.
func TestExecutorSingleFlightLeaderFailure(t *testing.T) {
	cat, names := testSetup(t, 2, 3000, 3)
	x := NewExecutor(cat, Config{Workers: 4, CacheSize: 16})
	req := &QueryRequest{Query: []float64{0, 0, 0}, Relations: names, K: 40}

	leadCtx, cancelLead := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var leaderErr, followerErr error
	var follower *QueryResponse
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, leaderErr = x.Execute(leadCtx, req)
	}()
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond) // enqueue behind the leader
		follower, followerErr = x.Execute(context.Background(), req)
	}()
	time.Sleep(10 * time.Millisecond)
	cancelLead()
	wg.Wait()
	// Ordering is timing-dependent: the follower either joined the flight
	// (and must have recovered from the leader's cancellation) or ran
	// first on its own. Either way it must succeed.
	if followerErr != nil {
		t.Fatalf("follower failed: %v (leader err %v)", followerErr, leaderErr)
	}
	if len(follower.Results) == 0 {
		t.Fatal("follower got no results")
	}
}

// TestHTTPShardedParityAndManagement drives the full HTTP surface:
// register a relation sharded and unsharded via POST /v1/relations,
// verify shard counts in /v1/relations and /v1/stats, compare top-k
// byte-for-byte, then delete + re-register under the same name and
// verify generation-based cache invalidation.
func TestHTTPShardedParityAndManagement(t *testing.T) {
	cat := NewCatalog()
	exec := NewExecutor(cat, Config{Workers: 4, CacheSize: 64})
	srv := httptest.NewServer(NewServer(cat, exec).Handler())
	t.Cleanup(srv.Close)

	csvOf := func(rel *proxrank.Relation) string {
		var buf bytes.Buffer
		if err := proxrank.WriteRelationCSV(&buf, rel); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	post := func(path, body string) (*http.Response, []byte) {
		resp, err := http.Post(srv.URL+path, "text/csv", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}
	del := func(name string) *http.Response {
		req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/relations/"+name, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	relP := tieTestRelation(t, "P", 5, 100, 2)
	relQ := tieTestRelation(t, "Q", 6, 90, 2)
	relQ2 := tieTestRelation(t, "Q", 60, 90, 2) // same name, different data

	if resp, data := post("/v1/relations?name=P&shards=4&strategy=grid", csvOf(relP)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register P: status %d: %s", resp.StatusCode, data)
	} else {
		var out struct {
			Relation RelationInfo `json:"relation"`
		}
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if out.Relation.Shards < 4 || out.Relation.Tuples != relP.Len() {
			t.Fatalf("register P answered %+v", out.Relation)
		}
	}
	if resp, data := post("/v1/relations?name=Q", csvOf(relQ)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register Q: status %d: %s", resp.StatusCode, data)
	}
	if resp, _ := post("/v1/relations?name=Q", csvOf(relQ)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register answered %d, want 409", resp.StatusCode)
	}
	if resp, _ := post("/v1/relations", "id,score,x1\na,1,0\n"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless register answered %d, want 400", resp.StatusCode)
	}

	// Shard counts surfaced in /v1/relations and /v1/stats.
	relResp, err := http.Get(srv.URL + "/v1/relations")
	if err != nil {
		t.Fatal(err)
	}
	var rels struct {
		Relations []RelationInfo `json:"relations"`
	}
	if err := json.NewDecoder(relResp.Body).Decode(&rels); err != nil {
		t.Fatal(err)
	}
	relResp.Body.Close()
	if len(rels.Relations) != 2 || rels.Relations[0].Shards < 4 || rels.Relations[1].Shards != 1 {
		t.Fatalf("GET /v1/relations = %+v", rels.Relations)
	}
	statsResp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		StatsSnapshot
		Relations   int `json:"relations"`
		TotalShards int `json:"totalShards"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if stats.Relations != 2 || stats.TotalShards != rels.Relations[0].Shards+rels.Relations[1].Shards {
		t.Fatalf("GET /v1/stats shard view = %+v", stats)
	}

	// HTTP-layer parity: the sharded catalog's answer must match an
	// unsharded in-process reference exactly.
	refCat := NewCatalog()
	for _, rel := range []*proxrank.Relation{relP, relQ} {
		if err := refCat.Register(rel.Name, rel); err != nil {
			t.Fatal(err)
		}
	}
	refExec := NewExecutor(refCat, Config{Workers: 2, CacheSize: -1})
	query := &QueryRequest{Query: []float64{1.5, 2.5}, Relations: []string{"P", "Q"}, K: 8}
	want, err := refExec.Execute(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, data, err := postTopK(srv.URL, query)
	if err != nil {
		t.Fatal(err)
	}
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("topk status %d: %s", httpResp.StatusCode, data)
	}
	var got QueryResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatalf("HTTP sharded results diverge\n got: %+v\nwant: %+v", got.Results, want.Results)
	}

	// Generation-based invalidation: delete Q, re-register different data
	// under the same name, and the cached answer must not survive.
	if resp := del("Q"); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete Q answered %d", resp.StatusCode)
	}
	if resp := del("Q"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete answered %d, want 404", resp.StatusCode)
	}
	if resp, data := post("/v1/relations?name=Q&shards=3", csvOf(relQ2)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("re-register Q: status %d: %s", resp.StatusCode, data)
	}
	_, data2, err := postTopK(srv.URL, query)
	if err != nil {
		t.Fatal(err)
	}
	var got2 QueryResponse
	if err := json.Unmarshal(data2, &got2); err != nil {
		t.Fatal(err)
	}
	if got2.Cached {
		t.Fatal("query after re-registration was served from the stale cache")
	}
	if reflect.DeepEqual(got2.Results, got.Results) {
		t.Fatal("re-registered relation served the old relation's results")
	}
}
