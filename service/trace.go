package service

import (
	"encoding/json"
	"math"
	"sync"
	"time"

	"repro/api"
)

// maxTraceEvents bounds each per-kind event list a trace recorder
// retains (pulls, bounds, buffer events): a pathological run could
// otherwise make one traced query allocate without limit. Overflow is
// counted, not silently dropped — Trace.DroppedEvents reports it.
const maxTraceEvents = 4096

// traceRecorder implements proxrank.Tracer for one traced engine run,
// accumulating the pull-level detail of the api trace. The engine
// invokes it from whichever goroutine drives the run (the request's own
// for batch, the detached engine goroutine for brokered streams), while
// the request goroutine snapshots it afterwards — hence the mutex. Only
// traced runs pay for it.
type traceRecorder struct {
	mu      sync.Mutex
	pulls   []api.TracePull
	bounds  []api.TraceBound
	buffer  []api.TraceBuffer
	dropped int64
	// observePull, when set, feeds the traced-run pull-duration
	// histogram alongside the trace itself.
	observePull func(time.Duration)
}

func (r *traceRecorder) TracePull(relation, depth int, d time.Duration) {
	r.mu.Lock()
	if len(r.pulls) < maxTraceEvents {
		r.pulls = append(r.pulls, api.TracePull{
			Relation:      relation,
			Depth:         depth,
			ElapsedMicros: d.Microseconds(),
		})
	} else {
		r.dropped++
	}
	r.mu.Unlock()
	if r.observePull != nil {
		r.observePull(d)
	}
}

func (r *traceRecorder) TraceBound(sumDepths int, threshold float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.bounds) >= maxTraceEvents {
		r.dropped++
		return
	}
	b := api.TraceBound{SumDepths: sumDepths}
	if !isInfOrNaN(threshold) {
		t := threshold
		b.Threshold = &t
	}
	r.bounds = append(r.bounds, b)
}

func (r *traceRecorder) TraceBuffer(action string, count int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buffer) >= maxTraceEvents {
		r.dropped++
		return
	}
	r.buffer = append(r.buffer, api.TraceBuffer{Action: action, Count: count})
}

// snapshot copies the recorded detail into t. Safe to call while the
// engine may still be running (slow-query logging on a failure path);
// the copy is consistent under the mutex.
func (r *traceRecorder) snapshot(t *api.Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t.Pulls = append([]api.TracePull(nil), r.pulls...)
	t.Bounds = append([]api.TraceBound(nil), r.bounds...)
	t.Buffer = append([]api.TraceBuffer(nil), r.buffer...)
	t.DroppedEvents = r.dropped
}

// queryObs is the per-request observation state shared by metrics,
// tracing, and the slow-query log: every request gets one (the
// always-on part is two timestamps and a few strings), and the trace
// recorder only exists when the request asked for a trace.
type queryObs struct {
	x     *Executor
	mode  string // labelModeBatch | labelModeStream
	start time.Time
	mark  time.Time // start of the current phase
	algo  string
	cache string // api.Cache* vocabulary, or labelCacheNone pre-lookup
	ttfe  time.Duration
	rec   *traceRecorder
	// degraded/missing mirror the response's degradation report into the
	// trace (and the slow-query log): a degraded run is exactly the kind
	// of anomaly those surfaces exist to explain.
	degraded bool
	missing  []api.MissingShard
	// phases is recorded when the request is traced or a slow-query
	// threshold is set — the two consumers of per-phase timing.
	phases     []api.TracePhase
	wantPhases bool
}

// beginObs opens the observation for one request.
func (x *Executor) beginObs(mode string, req *QueryRequest) *queryObs {
	now := time.Now()
	o := &queryObs{
		x:          x,
		mode:       mode,
		start:      now,
		mark:       now,
		algo:       "unknown",
		cache:      labelCacheNone,
		wantPhases: req.Trace || x.cfg.SlowQueryThreshold > 0,
	}
	if req.Trace {
		o.rec = &traceRecorder{observePull: x.m.observePull}
	}
	return o
}

// phase closes the span open since the last mark under the given name.
// No-op unless phases are wanted, so the untraced path pays one branch.
func (o *queryObs) phase(name string) {
	if !o.wantPhases {
		return
	}
	now := time.Now()
	o.phases = append(o.phases, api.TracePhase{Name: name, ElapsedMicros: now.Sub(o.mark).Microseconds()})
	o.mark = now
}

// firstEvent records the time to first delivered result once.
func (o *queryObs) firstEvent() {
	if o.ttfe == 0 {
		o.ttfe = time.Since(o.start)
	}
}

// outcomeLabel folds an error into the bounded outcome vocabulary: "ok"
// or the APIError code (itself a closed enum).
func outcomeLabel(err error) string {
	if err == nil {
		return labelOutcomeOK
	}
	return string(asAPIError(err).Code)
}

// trace assembles the api.Trace for this request. Phase spans cover the
// service layer; pull-level detail is present only when this request's
// own run was traced (cache hits and coalesced followers report their
// phases and cache state, which is the honest account of what they did).
func (o *queryObs) trace() *api.Trace {
	t := &api.Trace{CacheState: o.cache, Phases: o.phases, Degraded: o.degraded, ShardsMissing: o.missing}
	if o.rec != nil {
		o.rec.snapshot(t)
	}
	return t
}

// noteDegraded copies a response's degradation report into the
// observation, for the trace and the slow-query log.
func (o *queryObs) noteDegraded(degraded bool, missing []api.MissingShard) {
	if degraded {
		o.degraded = true
		o.missing = missing
	}
}

// finish closes the request: observes the latency and TTFE histograms
// and, past the threshold, emits the slow-query log line. Call exactly
// once, after the last phase is recorded.
func (o *queryObs) finish(req *QueryRequest, err error) {
	dur := time.Since(o.start)
	if o.ttfe == 0 {
		// Batch responses deliver everything at once; a stream that
		// errored before its first event has no TTFE worth the name.
		// Either way first-event time equals total time.
		o.ttfe = dur
	}
	outcome := outcomeLabel(err)
	o.x.m.duration.With(o.mode, o.algo, o.cache, outcome).ObserveDuration(dur.Seconds())
	o.x.m.ttfe.With(o.mode, o.algo, o.cache).ObserveDuration(o.ttfe.Seconds())
	if th := o.x.cfg.SlowQueryThreshold; th > 0 && dur >= th && o.x.cfg.SlowQueryLog != nil {
		o.x.logSlowQuery(req, o, dur, outcome)
	}
}

// SlowQuery is one slow-query log record: emitted as a single JSON line
// on Config.SlowQueryLog whenever a request's total duration reaches
// Config.SlowQueryThreshold. Trace carries the same structure a traced
// request returns — always the phases and cache state; pull-level
// detail when the request was also traced.
type SlowQuery struct {
	Mode           string    `json:"mode"`
	Relations      []string  `json:"relations"`
	K              int       `json:"k"`
	Algorithm      string    `json:"algorithm"`
	Outcome        string    `json:"outcome"`
	DurationMicros int64     `json:"durationMicros"`
	Trace          api.Trace `json:"trace"`
}

// logSlowQuery emits one SlowQuery line. Marshal failures are
// impossible for this shape (plain structs, no cycles) and would only
// lose a log line; write failures are the sink's problem.
func (x *Executor) logSlowQuery(req *QueryRequest, o *queryObs, dur time.Duration, outcome string) {
	rec := SlowQuery{
		Mode:           o.mode,
		Relations:      req.Relations,
		K:              req.K,
		Algorithm:      o.algo,
		Outcome:        outcome,
		DurationMicros: dur.Microseconds(),
		Trace:          *o.trace(),
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	x.slowMu.Lock()
	defer x.slowMu.Unlock()
	_, _ = x.cfg.SlowQueryLog.Write(append(line, '\n'))
}

// isInfOrNaN reports whether f cannot be represented in JSON.
func isInfOrNaN(f float64) bool { return math.IsInf(f, 0) || math.IsNaN(f) }
