package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	proxrank "repro"
	"repro/api"
	"repro/internal/shardrpc"
)

// maxRequestBody bounds the JSON body of a query to keep a single caller
// from exhausting server memory.
const maxRequestBody = 1 << 20

// maxRelationBody bounds the CSV body of a relation registration.
const maxRelationBody = 32 << 20

// Server is the HTTP front end: JSON endpoints over an executor and its
// catalog. Every query endpoint speaks the versioned api.Request model.
//
//	POST   /v1/query            — answer a query (batch JSON response)
//	POST   /v1/query/stream     — answer a query incrementally (NDJSON
//	                              api.ResultEvent lines, flushed as the
//	                              engine certifies each result)
//	POST   /v1/topk             — legacy alias of /v1/query
//	GET    /v1/relations        — list the registered relations
//	POST   /v1/relations        — register a relation from a CSV body
//	DELETE /v1/relations/{name} — evict a relation
//	GET    /v1/healthz          — liveness probe
//	GET    /v1/stats            — cumulative serving counters
//	GET    /metrics             — Prometheus text exposition of the same
//	                              counters plus latency/TTFE/engine-cost
//	                              histograms
//
// Every error produced by the handlers carries the structured body
// {"error":{"code":..., "message":...}}; unmatched paths and methods are
// answered by the router with Go's plain-text 404/405.
type Server struct {
	exec  *Executor
	cat   *Catalog
	start time.Time
	mux   *http.ServeMux
	// fleet, when set (coordinator mode), adds per-peer health to
	// /v1/healthz and per-peer RPC counters to /v1/stats.
	fleet *shardrpc.Fleet
}

// NewServer wires the endpoints over cat and exec.
func NewServer(cat *Catalog, exec *Executor) *Server {
	s := &Server{exec: exec, cat: cat, start: time.Now(), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/query/stream", s.handleQueryStream)
	s.mux.HandleFunc("POST /v1/topk", s.handleTopK)
	s.mux.HandleFunc("GET /v1/relations", s.handleRelations)
	s.mux.HandleFunc("POST /v1/relations", s.handleRegisterRelation)
	s.mux.HandleFunc("DELETE /v1/relations/{name}", s.handleEvictRelation)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.Handle("GET /metrics", exec.Registry().Handler())
	return s
}

// Handler returns the routed handler, ready for http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// AttachFleet marks this server a coordinator over fleet: /v1/healthz
// gains per-peer health (with degraded, not failed, reporting when a
// peer is down), /v1/stats gains per-peer RPC counters, and the
// executor's registry gains the per-peer metric families. Call once,
// before serving.
func (s *Server) AttachFleet(fleet *shardrpc.Fleet) {
	s.fleet = fleet
	s.exec.AttachFleet(fleet)
}

// writeJSON serializes v with status code. Marshaling happens before the
// header is written so an encode failure can still surface as a
// structured 500 instead of a silent 200 with a truncated body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		buf, _ = json.Marshal(struct {
			Error *APIError `json:"error"`
		}{apiErrorf(CodeInternal, "encoding response: %v", err)})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(buf, '\n'))
}

// writeError emits the structured error body. Overload rejections get a
// Retry-After so well-behaved clients back off instead of hammering a
// server that just told them its queue is full.
func writeError(w http.ResponseWriter, err error) {
	ae := asAPIError(err)
	if ae.Code == CodeOverloaded {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, ae.Code.HTTPStatus(), struct {
		Error *APIError `json:"error"`
	}{ae})
}

// decodeRequest reads one api.Request from the body, answering the
// structured error itself on failure (ok reports whether req is usable).
func decodeRequest(w http.ResponseWriter, r *http.Request) (*QueryRequest, bool) {
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, apiErrorf(CodeBadRequest, "request body exceeds %d bytes", maxRequestBody))
			return nil, false
		}
		writeError(w, apiErrorf(CodeBadRequest, "invalid JSON body: %v", err))
		return nil, false
	}
	if dec.More() {
		writeError(w, apiErrorf(CodeBadRequest, "request body must hold exactly one JSON object"))
		return nil, false
	}
	return &req, true
}

// handleQuery answers POST /v1/query: one api.Request in, one batch
// api.Response out.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	resp, err := s.exec.Execute(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTopK is the legacy spelling of /v1/query, kept as a thin adapter:
// the body and response shapes are identical (the api model is a
// superset of the historical one), so it simply delegates.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.handleQuery(w, r)
}

// handleQueryStream answers POST /v1/query/stream with NDJSON: one
// api.ResultEvent per line, the first result flushed as soon as the
// engine certifies it, a summary line last. Failures before the first
// event are ordinary structured errors with a proper status; failures
// after it are appended in-band as an error event (the status line has
// already been sent).
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	wrote := false
	sink := func(ev api.ResultEvent) error {
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			wrote = true
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	if err := s.exec.ExecuteStream(r.Context(), req, sink); err != nil {
		if !wrote {
			writeError(w, err)
			return
		}
		// Best effort: the client may already be gone.
		_ = enc.Encode(api.ResultEvent{Type: api.EventError, Error: asAPIError(err)})
	}
}

func (s *Server) handleRelations(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Relations []RelationInfo `json:"relations"`
	}{s.cat.Infos()})
}

// handleRegisterRelation registers a relation at runtime from a CSV
// request body ("id,score,x1,...,xd[,attr...]"). Query parameters:
//
//	name     — catalog name (required)
//	maxScore — σ_max; 0 or absent infers it from the data
//	shards   — shard count (default 1; 0 auto-picks from relation size)
//	strategy — partitioning strategy: hash (default) or grid
//
// A taken name answers 409; evict it first to replace a relation, which
// bumps the generation and invalidates every cached answer built on it.
func (s *Server) handleRegisterRelation(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		writeError(w, apiErrorf(CodeBadRequest, "query parameter %q is required", "name"))
		return
	}
	maxScore := 0.0
	if v := q.Get("maxScore"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, apiErrorf(CodeBadRequest, "bad maxScore %q: %v", v, err))
			return
		}
		maxScore = f
	}
	shards := 1
	if v := q.Get("shards"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, apiErrorf(CodeBadRequest, "bad shards %q: want a non-negative integer (0 = auto)", v))
			return
		}
		shards = n
	}
	strategy, err := proxrank.ParsePartitionStrategy(q.Get("strategy"))
	if err != nil {
		writeError(w, apiErrorf(CodeBadRequest, "%v", err))
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxRelationBody)
	rel, err := proxrank.ReadRelationCSV(body, name, maxScore)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, apiErrorf(CodeBadRequest, "relation body exceeds %d bytes", maxRelationBody))
			return
		}
		writeError(w, apiErrorf(CodeBadRequest, "%v", err))
		return
	}
	if err := s.cat.RegisterSharded(name, rel, shards, strategy); err != nil {
		writeError(w, err)
		return
	}
	reginfo, err := s.cat.Info(name)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, struct {
		Relation RelationInfo `json:"relation"`
	}{reginfo})
}

// handleEvictRelation removes a relation from the catalog. In-flight
// queries holding the entry finish against it; cached answers die with
// the generation.
func (s *Server) handleEvictRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.cat.Evict(name) {
		writeError(w, apiErrorf(CodeNotFound, "relation %q is not registered", name))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Evicted string `json:"evicted"`
	}{name})
}

// PeerHealth is one fleet peer's state in the coordinator's healthz.
type PeerHealth struct {
	Addr   string `json:"addr"`
	Status string `json:"status"` // "ok" or "down"
	Error  string `json:"error,omitempty"`
	// OwnedShards maps relation name to the shard indices this peer
	// serves, per discovery.
	OwnedShards map[string][]int `json:"ownedShards,omitempty"`
	// Coverage qualifies a down peer: "replicated" when every shard it
	// owns is also served by a live peer (queries are unaffected),
	// "bound-dependent" when some shard has no live replica — a query
	// still succeeds if its score floor proves those shards prunable, and
	// maps to a clean "unavailable" error otherwise.
	Coverage string `json:"coverage,omitempty"`
}

// peerHealth pings every fleet peer and classifies the fallout of any
// that are down. The coordinator itself is alive either way, so the
// aggregate status is "degraded", never a non-200: a down peer removes
// capacity, not the coordinator.
func (s *Server) peerHealth(ctx context.Context) (status string, peers []PeerHealth) {
	status = "ok"
	owned := make(map[string]map[string][]int)    // addr → relation → shards
	replicas := make(map[string]map[int][]string) // relation → shard → owner addrs
	for _, ri := range s.cat.Infos() {
		for addr, shards := range ri.Owners {
			m, ok := owned[addr]
			if !ok {
				m = make(map[string][]int)
				owned[addr] = m
			}
			m[ri.Name] = shards
			rm, ok := replicas[ri.Name]
			if !ok {
				rm = make(map[int][]string)
				replicas[ri.Name] = rm
			}
			for _, sh := range shards {
				rm[sh] = append(rm[sh], addr)
			}
		}
	}
	up := make(map[string]bool)
	for _, p := range s.fleet.Peers() {
		ph := PeerHealth{Addr: p.Addr, Status: "ok", OwnedShards: owned[p.Addr]}
		if _, err := p.Call(ctx, &shardrpc.Request{Verb: shardrpc.VerbPing}); err != nil {
			ph.Status = "down"
			ph.Error = err.Error()
			status = "degraded"
		} else {
			up[p.Addr] = true
		}
		peers = append(peers, ph)
	}
	for i := range peers {
		if peers[i].Status != "down" {
			continue
		}
		coverage := "replicated"
		for rel, shards := range peers[i].OwnedShards {
			for _, sh := range shards {
				live := false
				for _, addr := range replicas[rel][sh] {
					if up[addr] {
						live = true
						break
					}
				}
				if !live {
					coverage = "bound-dependent"
				}
			}
		}
		peers[i].Coverage = coverage
	}
	return status, peers
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	var peers []PeerHealth
	if s.fleet != nil {
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		defer cancel()
		status, peers = s.peerHealth(ctx)
	}
	writeJSON(w, http.StatusOK, struct {
		Status        string       `json:"status"`
		Relations     int          `json:"relations"`
		UptimeSeconds float64      `json:"uptimeSeconds"`
		Peers         []PeerHealth `json:"peers,omitempty"`
	}{status, s.cat.Len(), time.Since(s.start).Seconds(), peers})
}

// handleReadyz answers GET /v1/readyz: readiness, as opposed to the
// liveness of /v1/healthz. The server is not ready — 503, so load
// balancers and startup waits hold traffic — while the catalog is still
// building a registration's indexes, or (coordinator mode) while some
// shard of a registered remote relation has no reachable replica at
// all; it is ready otherwise, including when down peers are fully
// covered by live replicas. Healthz stays 200 in every one of those
// states: the process is alive either way.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	reply := func(ready bool, reason string) {
		status := http.StatusOK
		if !ready {
			w.Header().Set("Retry-After", "1")
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, struct {
			Ready  bool   `json:"ready"`
			Reason string `json:"reason,omitempty"`
		}{ready, reason})
	}
	if n := s.cat.Building(); n > 0 {
		reply(false, "catalog: index build in progress")
		return
	}
	if s.fleet != nil {
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		defer cancel()
		_, peers := s.peerHealth(ctx)
		for _, p := range peers {
			if p.Status == "down" && p.Coverage == "bound-dependent" {
				reply(false, "shards without a live replica (peer "+p.Addr+" down, unreplicated)")
				return
			}
		}
	}
	reply(true, "")
}

// PeerStats is one fleet peer's cumulative RPC counters in /v1/stats.
type PeerStats struct {
	Addr       string `json:"addr"`
	Pulls      int64  `json:"pulls"`
	Retries    int64  `json:"retries"`
	Reconnects int64  `json:"reconnects"`
	Hedges     int64  `json:"hedges"`
	HedgeWins  int64  `json:"hedgeWins"`
	// Breaker is the peer's circuit-breaker position (closed, open,
	// half-open); BreakerOpens counts its transitions into open.
	Breaker      string `json:"breaker"`
	BreakerOpens int64  `json:"breakerOpens"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var peers []PeerStats
	if s.fleet != nil {
		for _, p := range s.fleet.Peers() {
			peers = append(peers, PeerStats{
				Addr:         p.Addr,
				Pulls:        p.Pulls.Load(),
				Retries:      p.Retries.Load(),
				Reconnects:   p.Reconnects.Load(),
				Hedges:       p.Hedges.Load(),
				HedgeWins:    p.HedgeWins.Load(),
				Breaker:      p.Breaker().State().String(),
				BreakerOpens: p.Breaker().Opens(),
			})
		}
	}
	writeJSON(w, http.StatusOK, struct {
		StatsSnapshot
		Relations   int         `json:"relations"`
		TotalShards int         `json:"totalShards"`
		Peers       []PeerStats `json:"peers,omitempty"`
	}{s.exec.Stats(), s.cat.Len(), s.cat.TotalShards(), peers})
}
