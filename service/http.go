package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// maxRequestBody bounds the JSON body of a query to keep a single caller
// from exhausting server memory.
const maxRequestBody = 1 << 20

// Server is the HTTP front end: four JSON endpoints over an executor and
// its catalog.
//
//	POST /v1/topk      — answer a proximity rank join query
//	GET  /v1/relations — list the registered relations
//	GET  /v1/healthz   — liveness probe
//	GET  /v1/stats     — cumulative serving counters
//
// Every error produced by the handlers carries the structured body
// {"error":{"code":..., "message":...}}; unmatched paths and methods are
// answered by the router with Go's plain-text 404/405.
type Server struct {
	exec  *Executor
	cat   *Catalog
	start time.Time
	mux   *http.ServeMux
}

// NewServer wires the endpoints over cat and exec.
func NewServer(cat *Catalog, exec *Executor) *Server {
	s := &Server{exec: exec, cat: cat, start: time.Now(), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/topk", s.handleTopK)
	s.mux.HandleFunc("GET /v1/relations", s.handleRelations)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// Handler returns the routed handler, ready for http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// writeJSON serializes v with status code. Marshaling happens before the
// header is written so an encode failure can still surface as a
// structured 500 instead of a silent 200 with a truncated body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		buf, _ = json.Marshal(struct {
			Error *APIError `json:"error"`
		}{apiErrorf(CodeInternal, "encoding response: %v", err)})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(buf, '\n'))
}

// writeError emits the structured error body.
func writeError(w http.ResponseWriter, err error) {
	ae := asAPIError(err)
	writeJSON(w, ae.Code.httpStatus(), struct {
		Error *APIError `json:"error"`
	}{ae})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, apiErrorf(CodeBadRequest, "request body exceeds %d bytes", maxRequestBody))
			return
		}
		writeError(w, apiErrorf(CodeBadRequest, "invalid JSON body: %v", err))
		return
	}
	if dec.More() {
		writeError(w, apiErrorf(CodeBadRequest, "request body must hold exactly one JSON object"))
		return
	}
	resp, err := s.exec.Execute(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRelations(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Relations []RelationInfo `json:"relations"`
	}{s.cat.Infos()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status        string  `json:"status"`
		Relations     int     `json:"relations"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
	}{"ok", s.cat.Len(), time.Since(s.start).Seconds()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.exec.Stats())
}
