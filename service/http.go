package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	proxrank "repro"
	"repro/api"
)

// maxRequestBody bounds the JSON body of a query to keep a single caller
// from exhausting server memory.
const maxRequestBody = 1 << 20

// maxRelationBody bounds the CSV body of a relation registration.
const maxRelationBody = 32 << 20

// Server is the HTTP front end: JSON endpoints over an executor and its
// catalog. Every query endpoint speaks the versioned api.Request model.
//
//	POST   /v1/query            — answer a query (batch JSON response)
//	POST   /v1/query/stream     — answer a query incrementally (NDJSON
//	                              api.ResultEvent lines, flushed as the
//	                              engine certifies each result)
//	POST   /v1/topk             — legacy alias of /v1/query
//	GET    /v1/relations        — list the registered relations
//	POST   /v1/relations        — register a relation from a CSV body
//	DELETE /v1/relations/{name} — evict a relation
//	GET    /v1/healthz          — liveness probe
//	GET    /v1/stats            — cumulative serving counters
//	GET    /metrics             — Prometheus text exposition of the same
//	                              counters plus latency/TTFE/engine-cost
//	                              histograms
//
// Every error produced by the handlers carries the structured body
// {"error":{"code":..., "message":...}}; unmatched paths and methods are
// answered by the router with Go's plain-text 404/405.
type Server struct {
	exec  *Executor
	cat   *Catalog
	start time.Time
	mux   *http.ServeMux
}

// NewServer wires the endpoints over cat and exec.
func NewServer(cat *Catalog, exec *Executor) *Server {
	s := &Server{exec: exec, cat: cat, start: time.Now(), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/query/stream", s.handleQueryStream)
	s.mux.HandleFunc("POST /v1/topk", s.handleTopK)
	s.mux.HandleFunc("GET /v1/relations", s.handleRelations)
	s.mux.HandleFunc("POST /v1/relations", s.handleRegisterRelation)
	s.mux.HandleFunc("DELETE /v1/relations/{name}", s.handleEvictRelation)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.Handle("GET /metrics", exec.Registry().Handler())
	return s
}

// Handler returns the routed handler, ready for http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// writeJSON serializes v with status code. Marshaling happens before the
// header is written so an encode failure can still surface as a
// structured 500 instead of a silent 200 with a truncated body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		buf, _ = json.Marshal(struct {
			Error *APIError `json:"error"`
		}{apiErrorf(CodeInternal, "encoding response: %v", err)})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(buf, '\n'))
}

// writeError emits the structured error body.
func writeError(w http.ResponseWriter, err error) {
	ae := asAPIError(err)
	writeJSON(w, ae.Code.HTTPStatus(), struct {
		Error *APIError `json:"error"`
	}{ae})
}

// decodeRequest reads one api.Request from the body, answering the
// structured error itself on failure (ok reports whether req is usable).
func decodeRequest(w http.ResponseWriter, r *http.Request) (*QueryRequest, bool) {
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, apiErrorf(CodeBadRequest, "request body exceeds %d bytes", maxRequestBody))
			return nil, false
		}
		writeError(w, apiErrorf(CodeBadRequest, "invalid JSON body: %v", err))
		return nil, false
	}
	if dec.More() {
		writeError(w, apiErrorf(CodeBadRequest, "request body must hold exactly one JSON object"))
		return nil, false
	}
	return &req, true
}

// handleQuery answers POST /v1/query: one api.Request in, one batch
// api.Response out.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	resp, err := s.exec.Execute(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTopK is the legacy spelling of /v1/query, kept as a thin adapter:
// the body and response shapes are identical (the api model is a
// superset of the historical one), so it simply delegates.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.handleQuery(w, r)
}

// handleQueryStream answers POST /v1/query/stream with NDJSON: one
// api.ResultEvent per line, the first result flushed as soon as the
// engine certifies it, a summary line last. Failures before the first
// event are ordinary structured errors with a proper status; failures
// after it are appended in-band as an error event (the status line has
// already been sent).
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	wrote := false
	sink := func(ev api.ResultEvent) error {
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			wrote = true
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	if err := s.exec.ExecuteStream(r.Context(), req, sink); err != nil {
		if !wrote {
			writeError(w, err)
			return
		}
		// Best effort: the client may already be gone.
		_ = enc.Encode(api.ResultEvent{Type: api.EventError, Error: asAPIError(err)})
	}
}

func (s *Server) handleRelations(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Relations []RelationInfo `json:"relations"`
	}{s.cat.Infos()})
}

// handleRegisterRelation registers a relation at runtime from a CSV
// request body ("id,score,x1,...,xd[,attr...]"). Query parameters:
//
//	name     — catalog name (required)
//	maxScore — σ_max; 0 or absent infers it from the data
//	shards   — shard count (default 1)
//	strategy — partitioning strategy: hash (default) or grid
//
// A taken name answers 409; evict it first to replace a relation, which
// bumps the generation and invalidates every cached answer built on it.
func (s *Server) handleRegisterRelation(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		writeError(w, apiErrorf(CodeBadRequest, "query parameter %q is required", "name"))
		return
	}
	maxScore := 0.0
	if v := q.Get("maxScore"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, apiErrorf(CodeBadRequest, "bad maxScore %q: %v", v, err))
			return
		}
		maxScore = f
	}
	shards := 1
	if v := q.Get("shards"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, apiErrorf(CodeBadRequest, "bad shards %q: want a positive integer", v))
			return
		}
		shards = n
	}
	strategy, err := proxrank.ParsePartitionStrategy(q.Get("strategy"))
	if err != nil {
		writeError(w, apiErrorf(CodeBadRequest, "%v", err))
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxRelationBody)
	rel, err := proxrank.ReadRelationCSV(body, name, maxScore)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, apiErrorf(CodeBadRequest, "relation body exceeds %d bytes", maxRelationBody))
			return
		}
		writeError(w, apiErrorf(CodeBadRequest, "%v", err))
		return
	}
	if err := s.cat.RegisterSharded(name, rel, shards, strategy); err != nil {
		writeError(w, err)
		return
	}
	reginfo, err := s.cat.Info(name)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, struct {
		Relation RelationInfo `json:"relation"`
	}{reginfo})
}

// handleEvictRelation removes a relation from the catalog. In-flight
// queries holding the entry finish against it; cached answers die with
// the generation.
func (s *Server) handleEvictRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.cat.Evict(name) {
		writeError(w, apiErrorf(CodeNotFound, "relation %q is not registered", name))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Evicted string `json:"evicted"`
	}{name})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status        string  `json:"status"`
		Relations     int     `json:"relations"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
	}{"ok", s.cat.Len(), time.Since(s.start).Seconds()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		StatsSnapshot
		Relations   int `json:"relations"`
		TotalShards int `json:"totalShards"`
	}{s.exec.Stats(), s.cat.Len(), s.cat.TotalShards()})
}
