// Package proxrank implements proximity rank join (Martinenghi &
// Tagliasacchi, PVLDB 3(1), 2010): given n relations whose tuples carry a
// score and a feature vector, and a query vector q, it returns the top-K
// combinations of one tuple per relation, ranked by an aggregate of the
// tuple scores, their distances from q, and their distances from the
// combination's centroid — "good results, near the query, near each
// other".
//
// Relations are consumed through sorted sequential access only (no random
// access, no index assumption), either by increasing distance from q or by
// decreasing score. The engine is the paper's ProxRJ template with four
// instantiations:
//
//   - CBRR — corner bound + round-robin pulling (the classic HRJN)
//   - CBPA — corner bound + adaptive pulling (HRJN*)
//   - TBRR — tight bound + round-robin (instance-optimal)
//   - TBPA — tight bound + adaptive pulling (instance-optimal, never
//     deeper than TBRR on any input)
//
// The tight bound solves, for every partial combination, a small convex
// quadratic program that locates the best possible unseen completion; it
// is tight in the sense of Schnaitter & Polyzotis, which makes the
// stopping condition instance-optimal — no correct deterministic
// algorithm can read asymptotically fewer tuples on any instance.
//
// # Quick start
//
//	hotels, _ := proxrank.NewRelation("hotels", 1.0, hotelTuples)
//	food, _ := proxrank.NewRelation("restaurants", 1.0, foodTuples)
//	res, err := proxrank.TopK(query, []*proxrank.Relation{hotels, food}, proxrank.Options{K: 5})
//	for _, c := range res.Combinations {
//	    fmt.Println(c.Score, c.Tuples[0].ID, c.Tuples[1].ID)
//	}
//
// Options.Algorithm defaults to TBPA, the paper's best algorithm. Use
// Options.Access to switch between distance-based (default) and
// score-based access; Options.Weights to tune the score/query-proximity/
// mutual-proximity trade-off of paper eq. (2); Options.DominancePeriod to
// enable the geometric dominance pruning of §3.2.2.
//
// # Incremental retrieval
//
// The engine is inherently incremental, and the Query session is the
// first-class surface for ranked enumeration: NewQuery builds a session
// from a transport-neutral api.Request, Next delivers results as the
// bound certifies them (k need not be known up front), and enumeration
// can continue past the initial K without restarting the run. All batch
// entry points are a session drained to K, so both consumption models
// share one engine invocation path and identical costs.
//
// The repository also ships the paper's full experimental study (see
// cmd/proxbench and EXPERIMENTS.md) and a concurrent query-serving layer
// over this library (see the api and service packages and cmd/proxserve).
package proxrank
